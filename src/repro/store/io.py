"""Byte-level IO primitives behind the store's durability protocol.

Every durable mutation the embedding store performs reduces to exactly
two primitives:

* :meth:`StoreIO.write_bytes` — create/overwrite a *temporary* file with
  the full payload, flush, and fsync it;
* :meth:`StoreIO.replace` — atomically rename the temporary file over its
  final name (``os.replace``) and fsync the containing directory.

Each primitive call advances a global **IO-operation index** and is
recorded in :attr:`StoreIO.op_log`, so a fault plan can deterministically
address "the k-th IO operation of this scenario".  The crash-matrix
harness (:mod:`repro.store.harness`) first runs a scenario with a plain
:class:`StoreIO` to enumerate the ops, then replays it once per
``(op, fault kind)`` pair with a :class:`FaultingStoreIO`.

:class:`FaultingStoreIO` implements the IO fault kinds declared in
:mod:`repro.runtime.faults`:

============================  =======================================
``torn_write``                half the payload reaches the temp file,
                              then :class:`InjectedCrash` (torn page)
``bitrot``                    the write completes with one byte flipped
                              (latent corruption, *no* crash)
``fsync_fail``                the fsync raises ``OSError`` back to the
                              store (commit must abort cleanly)
``crash_before_rename``       :class:`InjectedCrash` with the temp file
                              on disk but the rename not issued
``crash_after_rename``        the rename is durable, then
                              :class:`InjectedCrash`
============================  =======================================

``InjectedCrash`` must never be caught by store code — it simulates
SIGKILL.  Recovery is exercised by *re-opening* the store afterwards.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.runtime.faults import FaultInjector, InjectedCrash

__all__ = ["IOOp", "StoreIO", "FaultingStoreIO"]


@dataclass(frozen=True)
class IOOp:
    """One recorded IO operation: ``kind`` is ``"write"`` or ``"rename"``."""

    index: int
    kind: str
    path: str


class StoreIO:
    """The real IO layer: temp-file writes with fsync, atomic renames."""

    def __init__(self) -> None:
        self._next_index = 0
        self.op_log: list[IOOp] = []

    # ------------------------------------------------------------------ #
    def _advance(self, kind: str, path: Path) -> int:
        index = self._next_index
        self._next_index += 1
        self.op_log.append(IOOp(index=index, kind=kind, path=str(path)))
        return index

    @property
    def num_ops(self) -> int:
        return self._next_index

    # ------------------------------------------------------------------ #
    def write_bytes(self, path: str | Path, data: bytes) -> None:
        """Write ``data`` to ``path`` (a temp file) and fsync it."""
        path = Path(path)
        step = self._advance("write", path)
        self._do_write(step, path, bytes(data))

    def replace(self, tmp: str | Path, final: str | Path) -> None:
        """Atomically rename ``tmp`` over ``final``; fsync the directory."""
        tmp, final = Path(tmp), Path(final)
        step = self._advance("rename", final)
        self._do_replace(step, tmp, final)
        self._fsync_dir(final.parent)

    # ------------------------------------------------------------------ #
    # overridable internals (the fault-injection seams)
    # ------------------------------------------------------------------ #
    def _do_write(self, step: int, path: Path, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            self._fsync_file(step, handle.fileno())

    def _fsync_file(self, step: int, fd: int) -> None:
        os.fsync(fd)

    def _do_replace(self, step: int, tmp: Path, final: Path) -> None:
        os.replace(tmp, final)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform without dir-fsync
            pass
        finally:
            os.close(fd)


class FaultingStoreIO(StoreIO):
    """A :class:`StoreIO` that applies an injector's planned IO faults.

    ``injector.plan`` steps address the IO-operation index.  Faults whose
    kind does not apply to the op at their step (e.g. a rename fault at a
    write op) are ignored, so a crash matrix can sweep every kind over
    every op without bookkeeping which kind fits where.
    """

    def __init__(self, injector: FaultInjector) -> None:
        super().__init__()
        self.injector = injector

    def _do_write(self, step: int, path: Path, data: bytes) -> None:
        kinds = {f.kind for f in self.injector.io_faults(step)}
        torn = "torn_write" in kinds
        if torn:
            data = data[: max(1, len(data) // 2)]
        if "bitrot" in kinds and data:
            rotted = bytearray(data)
            rotted[step % len(rotted)] ^= 0xFF
            data = bytes(rotted)
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            if "fsync_fail" in kinds:
                raise OSError(f"injected fsync failure at io op {step}")
            os.fsync(handle.fileno())
        if torn:
            raise InjectedCrash(f"torn write crash at io op {step} ({path.name})")

    def _do_replace(self, step: int, tmp: Path, final: Path) -> None:
        kinds = {f.kind for f in self.injector.io_faults(step)}
        if "crash_before_rename" in kinds:
            raise InjectedCrash(
                f"crash before rename at io op {step} ({final.name})"
            )
        os.replace(tmp, final)
        if "crash_after_rename" in kinds:
            raise InjectedCrash(
                f"crash after rename at io op {step} ({final.name})"
            )
