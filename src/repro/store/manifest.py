"""Versioned JSON manifests — the store's single commit point.

A *generation* is one immutable, fully-materialized state of every table
in the store.  Generation ``g`` is described by ``manifest-g{g:08d}.json``
in the store directory::

    {
      "schema": 1,
      "generation": 3,
      "parent": 2,
      "tag": "ckpt-1",
      "seed": 0,
      "tables": {
        "entity": {
          "rows": 1000, "dim": 32, "dtype": "<f4", "rows_per_shard": 256,
          "shards": [ {"file": "...", "row_start": 0, "rows": 256,
                       "crc32": 123}, ... ]
        }, ...
      },
      "crc32": <self-checksum>
    }

``crc32`` is the CRC-32 of the canonical JSON of every *other* field
(``sort_keys``, compact separators), so a torn or bit-flipped manifest is
detected before any of its shards are trusted.

The commit protocol is: write every new shard (temp + fsync + rename),
then write the manifest the same way.  The manifest *rename* is the
single atomic commit point — before it, the new generation does not
exist (its shard files are unreferenced debris); after it, the
generation is complete because every file it references was already
durable.  Recovery therefore never sees a partial generation: a
generation either has a valid manifest whose shards all verify, or it is
not a generation.

Shard files are immutable once renamed: a later generation that leaves a
row range untouched *references the older file* instead of rewriting it.
That sharing is what makes checkpoints incremental — and why repair must
never quarantine a file still referenced by a healthy generation.
"""

from __future__ import annotations

import json
import re
import zlib
from pathlib import Path

from repro.core.exceptions import StoreCorruptionError, StoreError

from .io import StoreIO
from .shard import ShardInfo

__all__ = [
    "MANIFEST_SCHEMA",
    "manifest_name",
    "manifest_generation",
    "scan_manifests",
    "build_manifest",
    "manifest_bytes",
    "parse_manifest",
    "load_manifest",
    "write_manifest",
    "referenced_files",
]

MANIFEST_SCHEMA = 1
_MANIFEST_RE = re.compile(r"^manifest-g(\d{8})\.json$")


def manifest_name(generation: int) -> str:
    return f"manifest-g{generation:08d}.json"


def manifest_generation(name: str) -> int | None:
    """The generation number encoded in a manifest filename, or ``None``."""
    m = _MANIFEST_RE.match(name)
    return int(m.group(1)) if m else None


def scan_manifests(directory: str | Path) -> list[tuple[int, Path]]:
    """All manifest files in ``directory``, ascending by generation."""
    directory = Path(directory)
    found = []
    for path in directory.glob("manifest-g*.json"):
        gen = manifest_generation(path.name)
        if gen is not None:
            found.append((gen, path))
    return sorted(found)


def build_manifest(
    generation: int,
    tables: dict[str, dict],
    parent: int | None = None,
    tag: str = "",
    seed: int | None = None,
) -> dict:
    """Assemble a manifest dict (without its self-checksum).

    ``tables`` maps table name to ``{"rows", "dim", "dtype",
    "rows_per_shard", "shards": [ShardInfo | dict, ...]}``.
    """
    out_tables = {}
    for name, spec in tables.items():
        shards = [
            s.to_json() if isinstance(s, ShardInfo) else dict(s)
            for s in spec["shards"]
        ]
        out_tables[name] = {
            "rows": int(spec["rows"]),
            "dim": int(spec["dim"]),
            "dtype": str(spec.get("dtype", "<f4")),
            "rows_per_shard": int(spec["rows_per_shard"]),
            "shards": shards,
        }
    return {
        "schema": MANIFEST_SCHEMA,
        "generation": int(generation),
        "parent": None if parent is None else int(parent),
        "tag": str(tag),
        "seed": seed,
        "tables": out_tables,
    }


def _self_crc(body: dict) -> int:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def manifest_bytes(manifest: dict) -> bytes:
    """Serialize with the embedded self-checksum."""
    body = {k: v for k, v in manifest.items() if k != "crc32"}
    full = dict(body, crc32=_self_crc(body))
    return json.dumps(full, sort_keys=True, indent=1).encode("utf-8")


def parse_manifest(data: bytes, name: str = "<manifest>") -> dict:
    """Parse + self-checksum-verify manifest bytes."""
    try:
        manifest = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(f"{name}: corrupt manifest ({exc})") from exc
    if not isinstance(manifest, dict) or "crc32" not in manifest:
        raise StoreCorruptionError(f"{name}: not a manifest (no crc32)")
    body = {k: v for k, v in manifest.items() if k != "crc32"}
    if _self_crc(body) != int(manifest["crc32"]):
        raise StoreCorruptionError(f"{name}: manifest self-checksum mismatch")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise StoreCorruptionError(
            f"{name}: unsupported manifest schema {manifest.get('schema')!r}"
        )
    return manifest


def load_manifest(path: str | Path) -> dict:
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise StoreError(f"cannot read manifest {path}: {exc}") from exc
    manifest = parse_manifest(data, name=path.name)
    gen_from_name = manifest_generation(path.name)
    if gen_from_name is not None and gen_from_name != int(manifest["generation"]):
        raise StoreCorruptionError(
            f"{path.name}: filename generation {gen_from_name} != "
            f"manifest generation {manifest['generation']}"
        )
    return manifest


def write_manifest(io: StoreIO, directory: str | Path, manifest: dict) -> Path:
    """Atomically persist ``manifest``; the rename is the commit point."""
    directory = Path(directory)
    path = directory / manifest_name(int(manifest["generation"]))
    tmp = path.with_name(path.name + ".tmp")
    io.write_bytes(tmp, manifest_bytes(manifest))
    io.replace(tmp, path)
    return path


def referenced_files(manifest: dict) -> set[str]:
    """Shard filenames a manifest depends on (relative to the shards dir)."""
    files: set[str] = set()
    for spec in manifest.get("tables", {}).values():
        for shard in spec.get("shards", []):
            files.add(str(shard["file"]))
    return files
