"""Row-sharded, checksummed, mmap-backed embedding store.

Layout of a store directory::

    store/
      manifest-g00000000.json     # generation 0 (created empty)
      manifest-g00000001.json     # ...one JSON manifest per generation
      shards/
        entity-g00000001-s00000.shard
        entity-g00000001-s00001.shard
        relation-g00000001-s00000.shard
        entity-g00000002-s00001.shard   # gen 2 rewrote only shard 1
      quarantine/                 # recovery sweeps torn/corrupt files here

Two modes:

``train``
    Working values live in ordinary float64 arrays the model owns
    (``register`` binds them); the store tracks dirty rows (fed by the
    sparse-gradient row indices) and :meth:`MmapShardStore.commit`
    persists *only the shards containing dirty rows* as float32 under a
    new manifest generation.  Clean shards are carried into the new
    manifest by reference — that sharing is the incremental-checkpoint
    win.

``serve``
    Tables are :class:`ShardedTable` views over read-only ``np.memmap``
    shards — opening or swapping a generation moves **no** embedding
    bytes.  :meth:`MmapShardStore.remap` re-points the same view objects
    at another generation's files, which is what makes
    ``ModelRegistry.promote`` a manifest swap and rollback a re-point.

Crash safety (the full protocol is specified in ``docs/storage.md``):
every file is written temp + fsync + atomic rename, and the manifest
rename is the single commit point.  :meth:`MmapShardStore.open` verifies
checksums newest-generation-first, quarantines debris, and falls back to
the last consistent generation — so a crash at *any* byte of a write
leaves the store recoverable to exactly an old or a new generation,
never a hybrid (enforced by :mod:`repro.store.harness`).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from repro.core.exceptions import StoreCorruptionError, StoreError
from repro.telemetry.base import get_active

from .base import EmbeddingStore
from .io import StoreIO
from .manifest import (
    build_manifest,
    load_manifest,
    manifest_name,
    scan_manifests,
    write_manifest,
)
from .shard import ShardInfo, load_shard, map_shard, verify_shard, write_shard
from .verify import SHARDS_DIR, check_generation, quarantine_debris

__all__ = ["ShardedTable", "MmapShardStore"]

_TABLE_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


class ShardedTable:
    """Read-only row-sharded view over a table's mmap'd shard files.

    Row lookups gather only the requested rows (a copy of *those rows*,
    never of the table); ``@`` distributes over shards so full-catalog
    scoring streams through the maps without materializing the table.
    The object survives :meth:`MmapShardStore.remap` — only its internal
    shard list is re-pointed — so holders never see a half-swapped state.
    """

    def __init__(self, name: str, rows: int, dim: int, rows_per_shard: int) -> None:
        self.name = name
        self.rows = int(rows)
        self.dim = int(dim)
        self.rows_per_shard = int(rows_per_shard)
        self._shards: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def _set_shards(self, shards: list[np.ndarray] | None) -> None:
        self._shards = shards

    def _require(self) -> list[np.ndarray]:
        if self._shards is None:
            raise StoreError(f"table {self.name!r} is closed (store released it)")
        return self._shards

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.dim)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype("<f4")

    def __len__(self) -> int:
        return self.rows

    # ------------------------------------------------------------------ #
    def gather(self, rows) -> np.ndarray:
        """Copy of the requested rows, shape ``(len(rows), dim)``, float32."""
        shards = self._require()
        rows = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise StoreError(
                f"row index out of range for table {self.name!r} "
                f"({self.rows} rows)"
            )
        out = np.empty((rows.size, self.dim), dtype=np.float32)
        shard_of = rows // self.rows_per_shard
        local = rows - shard_of * self.rows_per_shard
        for s in np.unique(shard_of):
            mask = shard_of == s
            out[mask] = shards[int(s)][local[mask]]
        return out

    def __getitem__(self, index):
        if isinstance(index, (int, np.integer)):
            return self.gather([int(index)])[0]
        if isinstance(index, slice):
            return self.gather(np.arange(*index.indices(self.rows)))
        return self.gather(index)

    def __matmul__(self, other) -> np.ndarray:
        """Shard-wise ``table @ other`` (scores), no full-table copy."""
        shards = self._require()
        other = np.asarray(other)
        return np.concatenate([np.asarray(s @ other) for s in shards], axis=0)

    def to_array(self) -> np.ndarray:
        """Materialize the whole table (an explicit full copy), float32."""
        return np.concatenate(self._require(), axis=0)


class MmapShardStore(EmbeddingStore):
    """The durable :class:`~repro.store.base.EmbeddingStore` (see module doc)."""

    durable = True

    def __init__(
        self,
        directory: Path,
        mode: str,
        io: StoreIO,
        manifest: dict,
        seed: int | None,
    ) -> None:
        self.directory = Path(directory)
        self.mode = mode
        self.io = io
        self.seed = seed
        self.track_dirty = mode == "train"
        self._manifest = manifest
        self._closed = False
        # train mode: live working arrays + per-table dirty row masks
        self._arrays: dict[str, np.ndarray] = {}
        self._dirty: dict[str, np.ndarray] = {}
        self._rows_per_shard: dict[str, int] = {}
        # serve mode: persistent sharded views
        self._views: dict[str, ShardedTable] = {}
        if mode == "serve":
            self._build_views()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        directory: str | Path,
        rows_per_shard: int = 4096,
        seed: int | None = None,
        io: StoreIO | None = None,
    ) -> "MmapShardStore":
        """Initialize an empty store (generation 0) and open it for training."""
        if rows_per_shard < 1:
            raise StoreError("rows_per_shard must be >= 1")
        directory = Path(directory)
        if directory.is_dir() and scan_manifests(directory):
            raise StoreError(f"{directory} is already a store; use open()")
        directory.mkdir(parents=True, exist_ok=True)
        (directory / SHARDS_DIR).mkdir(exist_ok=True)
        io = io if io is not None else StoreIO()
        manifest = build_manifest(0, {}, parent=None, tag="create", seed=seed)
        write_manifest(io, directory, manifest)
        store = cls(directory, "train", io, manifest, seed)
        store.default_rows_per_shard = int(rows_per_shard)
        return store

    @classmethod
    def open(
        cls,
        directory: str | Path,
        mode: str = "train",
        generation: int | None = None,
        io: StoreIO | None = None,
        quarantine: bool = True,
    ) -> "MmapShardStore":
        """Open with first-class recovery (see module doc).

        Walks manifests newest-first, fully verifying each generation's
        shard checksums, and lands on the newest consistent one;
        torn/corrupt newer generations are recorded and (by default)
        quarantined.  ``generation`` pins an exact generation instead
        (no quarantine pass) — used for rollback views and checkpoint
        restore.  Raises :class:`StoreError` when nothing consistent
        exists.
        """
        if mode not in ("train", "serve"):
            raise StoreError(f"unknown store mode {mode!r}")
        directory = Path(directory)
        io = io if io is not None else StoreIO()
        entries = scan_manifests(directory) if directory.is_dir() else []
        if not entries:
            raise StoreError(f"{directory} is not an embedding store (no manifests)")
        tel = get_active()
        manifest, broken = cls._recover(directory, entries, generation, tel)
        if quarantine and generation is None:
            debris = quarantine_debris(directory) if broken or cls._has_debris(
                directory
            ) else []
            if debris and tel.enabled:
                tel.counter("store.files.quarantined").inc(len(debris))
        if broken and tel.enabled:
            tel.counter("store.recoveries").inc()
            tel.counter("store.generations.broken").inc(len(broken))
        store = cls(directory, mode, io, manifest, manifest.get("seed"))
        store.default_rows_per_shard = 4096
        return store

    @staticmethod
    def _has_debris(directory: Path) -> bool:
        if any(directory.glob("*.tmp")):
            return True
        shards = directory / SHARDS_DIR
        return shards.is_dir() and any(shards.glob("*.tmp"))

    @staticmethod
    def _recover(
        directory: Path,
        entries: list[tuple[int, Path]],
        generation: int | None,
        tel,
    ) -> tuple[dict, list[int]]:
        """Newest-first verified walk; returns ``(manifest, broken gens)``."""
        broken: list[int] = []
        for gen, path in reversed(entries):
            if generation is not None and gen != generation:
                continue
            try:
                manifest = load_manifest(path)
                status = check_generation(directory, manifest)
            except (StoreCorruptionError, StoreError) as exc:
                if generation is not None:
                    raise StoreError(
                        f"generation {generation} is not loadable: {exc}"
                    ) from exc
                broken.append(gen)
                continue
            if tel.enabled:
                tel.counter("store.shards.verified").inc(len(status.shards))
            if status.ok:
                return manifest, broken
            if tel.enabled:
                tel.counter("store.shards.corrupt").inc(len(status.bad_shards))
            if generation is not None:
                raise StoreError(
                    f"generation {generation} failed verification: "
                    + "; ".join(s.reason for s in status.bad_shards)
                )
            broken.append(gen)
        if generation is not None:
            raise StoreError(f"{directory} has no generation {generation}")
        raise StoreError(
            f"{directory}: no consistent generation "
            f"({len(broken)} candidate(s) failed verification)"
        )

    # ------------------------------------------------------------------ #
    # shared surface
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """The generation this store currently reads/extends."""
        return int(self._manifest["generation"])

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")

    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._manifest.get("tables", {})))

    def generations(self) -> tuple[int, ...]:
        """Generations with a *parseable* manifest (payloads verified on load)."""
        out = []
        for gen, path in scan_manifests(self.directory):
            try:
                load_manifest(path)
            except (StoreCorruptionError, StoreError):
                continue
            out.append(gen)
        return tuple(out)

    def load_table(self, name: str, generation: int | None = None) -> np.ndarray:
        """Materialize ``name`` at ``generation`` as float64 (verified read)."""
        self._check_open()
        if generation is None or generation == self.generation:
            manifest = self._manifest
        else:
            manifest = load_manifest(self.directory / manifest_name(int(generation)))
        spec = manifest.get("tables", {}).get(name)
        if spec is None:
            raise StoreError(
                f"generation {manifest['generation']} has no table {name!r}"
            )
        rows, dim = int(spec["rows"]), int(spec["dim"])
        out = np.empty((rows, dim), dtype=np.float64)
        for shard in spec["shards"]:
            info = ShardInfo.from_json(shard)
            path = self.directory / SHARDS_DIR / info.file
            verify_shard(path, expected=info, dim=dim)
            __, values = load_shard(path, verify=False)
            out[info.row_start : info.row_start + info.rows] = values
        return out

    def close(self) -> None:
        self._closed = True
        for view in self._views.values():
            view._set_shards(None)
        self._arrays.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------ #
    # train mode
    # ------------------------------------------------------------------ #
    def _require_train(self) -> None:
        self._check_open()
        if self.mode != "train":
            raise StoreError("store is open in read-only serve mode")

    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        self._require_train()
        if not _TABLE_NAME_RE.match(name):
            raise StoreError(f"invalid table name {name!r}")
        array = np.asarray(array)
        if array.ndim != 2:
            raise StoreError(f"table {name!r} must be 2-d, got {array.ndim}-d")
        spec = self._manifest.get("tables", {}).get(name)
        if spec is not None:
            if (int(spec["rows"]), int(spec["dim"])) != array.shape:
                raise StoreError(
                    f"table {name!r} has shape ({spec['rows']}, {spec['dim']}) "
                    f"on disk, register() got {array.shape}"
                )
            np.copyto(array, self.load_table(name))
            dirty = np.zeros(array.shape[0], dtype=bool)
            self._rows_per_shard[name] = int(spec["rows_per_shard"])
        else:
            # Brand-new table: everything must reach disk at first commit.
            dirty = np.ones(array.shape[0], dtype=bool)
            self._rows_per_shard[name] = int(
                getattr(self, "default_rows_per_shard", 4096)
            )
        self._arrays[name] = array
        self._dirty[name] = dirty
        return array

    def table(self, name: str):
        self._check_open()
        if self.mode == "serve":
            try:
                return self._views[name]
            except KeyError:
                raise StoreError(f"unknown table {name!r}") from None
        try:
            return self._arrays[name]
        except KeyError:
            raise StoreError(
                f"table {name!r} is not registered (train-mode tables are "
                "bound with register(); use load_table() for a copy)"
            ) from None

    def table_for_array(self, array: np.ndarray) -> str | None:
        for name, arr in self._arrays.items():
            if arr is array:
                return name
        return None

    def mark_dirty(self, name: str, rows: np.ndarray | None = None) -> None:
        self._require_train()
        try:
            mask = self._dirty[name]
        except KeyError:
            raise StoreError(f"table {name!r} is not registered") from None
        if rows is None:
            mask[:] = True
        else:
            mask[np.asarray(rows, dtype=np.int64)] = True

    def dirty_row_count(self, name: str) -> int:
        return int(self._dirty[name].sum())

    def commit(self, tag: str = "") -> int:
        """Persist dirtied shards under a new manifest generation.

        Returns the committed generation — unchanged when nothing is
        dirty (a no-op commit writes nothing).  On any IO failure
        (including an injected ``fsync_fail``) the commit aborts with
        :class:`StoreError`: the current generation is untouched, the
        dirty masks stay set (the commit is retryable), and any leftover
        temp files are swept to quarantine by the next ``open``.
        """
        self._require_train()
        if not any(mask.any() for mask in self._dirty.values()):
            return self.generation
        new_gen = self.generation + 1
        tel = get_active()
        span = (
            tel.begin("store/commit", generation=new_gen, tag=tag)
            if tel.enabled
            else None
        )
        shards_dir = self.directory / SHARDS_DIR
        prev_tables = self._manifest.get("tables", {})
        tables: dict[str, dict] = {}
        shards_written = 0
        try:
            for name in sorted(self._arrays):
                array = self._arrays[name]
                mask = self._dirty[name]
                rows, dim = array.shape
                rps = self._rows_per_shard[name]
                num_shards = -(-rows // rps)
                prev = prev_tables.get(name)
                dirty_shards = set(
                    np.unique(np.nonzero(mask)[0] // rps).tolist()
                )
                infos: list[ShardInfo] = []
                for s in range(num_shards):
                    if prev is None or s in dirty_shards:
                        start = s * rps
                        stop = min(start + rps, rows)
                        info = write_shard(
                            self.io,
                            shards_dir / f"{name}-g{new_gen:08d}-s{s:05d}.shard",
                            name,
                            start,
                            array[start:stop],
                            seed=self.seed,
                        )
                        shards_written += 1
                    else:
                        info = ShardInfo.from_json(prev["shards"][s])
                    infos.append(info)
                tables[name] = {
                    "rows": rows,
                    "dim": dim,
                    "dtype": "<f4",
                    "rows_per_shard": rps,
                    "shards": infos,
                }
            manifest = build_manifest(
                new_gen, tables, parent=self.generation, tag=tag, seed=self.seed
            )
            write_manifest(self.io, self.directory, manifest)
        except OSError as exc:
            if span is not None:
                tel.end(span, outcome="aborted", error=str(exc))
            raise StoreError(
                f"commit of generation {new_gen} aborted: {exc}"
            ) from exc
        self._manifest = manifest
        for mask in self._dirty.values():
            mask[:] = False
        if span is not None:
            tel.counter("store.commits").inc()
            tel.counter("store.shards.written").inc(shards_written)
            tel.end(span, outcome="ok", shards_written=shards_written)
        return new_gen

    # ------------------------------------------------------------------ #
    # serve mode
    # ------------------------------------------------------------------ #
    def _build_views(self) -> None:
        """(Re)build the per-table memmap lists for the current manifest."""
        alive: set[str] = set()
        for name, spec in self._manifest.get("tables", {}).items():
            rows, dim = int(spec["rows"]), int(spec["dim"])
            maps: list[np.ndarray] = []
            for shard in spec["shards"]:
                info = ShardInfo.from_json(shard)
                __, mapped = map_shard(self.directory / SHARDS_DIR / info.file)
                maps.append(mapped)
            view = self._views.get(name)
            if view is None:
                view = ShardedTable(name, rows, dim, int(spec["rows_per_shard"]))
                self._views[name] = view
            else:
                view.rows, view.dim = rows, dim
                view.rows_per_shard = int(spec["rows_per_shard"])
            view._set_shards(maps)
            alive.add(name)
        for name in set(self._views) - alive:
            self._views[name]._set_shards(None)

    def remap(self, generation: int | None = None) -> int:
        """Re-point the serve views at another generation's shard files.

        ``None`` targets the newest consistent generation (a fresh
        verified recovery scan).  No embedding bytes move: existing
        :class:`ShardedTable` objects keep their identity and only their
        internal memmap lists are swapped — this is the mechanism behind
        manifest-swap promotion and re-point rollback.  Returns the
        mapped generation.
        """
        self._check_open()
        if self.mode != "serve":
            raise StoreError("remap() is a serve-mode operation")
        entries = scan_manifests(self.directory)
        if not entries:
            raise StoreError(f"{self.directory} has no manifests")
        tel = get_active()
        manifest, __ = self._recover(self.directory, entries, generation, tel)
        self._manifest = manifest
        self._build_views()
        if tel.enabled:
            tel.counter("store.remaps").inc()
        return self.generation
