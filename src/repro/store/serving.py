"""Serving-side recommender that scores straight off a sharded store.

:class:`StoredEmbeddingRecommender` is the bridge between the durable
store and the fault-tolerant serving stack: it implements the normal
:class:`~repro.core.recommender.Recommender` interface but reads its
embedding tables from a serve-mode
:class:`~repro.store.mmap.MmapShardStore` instead of holding arrays of
its own.  Promotion of a new training generation is therefore
:meth:`refresh` — a manifest remap that moves no embedding bytes — and
rollback is a remap at the previous generation.

Because every ``score_all`` goes through the store, a closed or broken
store surfaces as :class:`~repro.core.exceptions.StoreError` from the
rung, which :class:`~repro.serving.service.RecommenderService` treats
like any other rung failure: the breaker records it and the request is
served by the next rung down the degradation ladder.  The durability
harness asserts exactly this (typed outcomes, never an escaped
exception) while shards are being corrupted underneath the service.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.recommender import Recommender

from .mmap import MmapShardStore

__all__ = ["StoredEmbeddingRecommender"]


class StoredEmbeddingRecommender(Recommender):
    """Score users against items using a store's embedding tables.

    Parameters
    ----------
    store:
        A serve-mode :class:`MmapShardStore` (``remap``-able).
    user_entities, item_entities:
        Row indices into ``entity_table`` for each user / item id — the
        same alignment the lifted user-item graph gives CFKG-style
        models.
    relation_id:
        Row of ``relation_table`` used as the interaction translation.
        When given, scores are TransE-style ``-||u + r - i||^2``;
        when ``None``, plain dot products ``i @ u``.
    """

    requires_kg = False

    def __init__(
        self,
        store: MmapShardStore,
        user_entities: np.ndarray,
        item_entities: np.ndarray,
        relation_id: int | None = None,
        entity_table: str = "entity",
        relation_table: str = "relation",
    ) -> None:
        super().__init__()
        if store.mode != "serve":
            raise ConfigError(
                "StoredEmbeddingRecommender needs a serve-mode store "
                f"(got mode={store.mode!r})"
            )
        self.store = store
        self.user_entities = np.asarray(user_entities, dtype=np.int64)
        self.item_entities = np.asarray(item_entities, dtype=np.int64)
        self.relation_id = relation_id
        self.entity_table = entity_table
        self.relation_table = relation_table

    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """The store generation currently being served."""
        return self.store.generation

    def refresh(self, generation: int | None = None) -> int:
        """Re-point at ``generation`` (default: newest consistent).

        This is the whole promotion/rollback mechanism: a verified
        manifest remap, no embedding arrays copied or rebuilt.
        """
        return self.store.remap(generation)

    # ------------------------------------------------------------------ #
    def fit(self, dataset: Dataset) -> "StoredEmbeddingRecommender":
        """No training happens here — just bind the catalog being served."""
        if dataset.num_users != self.user_entities.size:
            raise ConfigError(
                f"user_entities maps {self.user_entities.size} users, "
                f"dataset has {dataset.num_users}"
            )
        if dataset.num_items != self.item_entities.size:
            raise ConfigError(
                f"item_entities maps {self.item_entities.size} items, "
                f"dataset has {dataset.num_items}"
            )
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        self.fitted_dataset
        entities = self.store.table(self.entity_table)
        u = entities.gather([int(self.user_entities[int(user_id)])])[0]
        u = u.astype(np.float64)
        items = entities.gather(self.item_entities).astype(np.float64)
        if self.relation_id is None:
            return items @ u
        delta = (u + self._relation())[None, :] - items
        return -(delta**2).sum(axis=1)

    # ------------------------------------------------------------------ #
    # retrieval protocol (see repro.retrieval.two_stage): lets a
    # TwoStageRecommender generate ANN candidates over this model's item
    # vectors and exact-rerank them by gathering only the candidate rows
    # from the serve-mode mmap views — never the full table.
    # ------------------------------------------------------------------ #
    def _relation(self) -> np.ndarray:
        relations = self.store.table(self.relation_table)
        return relations.gather([int(self.relation_id)])[0].astype(np.float64)

    @property
    def retrieval_metric(self) -> str:
        """``"ip"`` for dot-product scoring, ``"l2"`` for TransE translation."""
        return "ip" if self.relation_id is None else "l2"

    def item_vectors(self) -> np.ndarray:
        """The item rows an ANN index is built over (one materialized read).

        This is an index-*build*-time operation (per promotion, not per
        request); request-path gathers stay candidate-sized.
        """
        entities = self.store.table(self.entity_table)
        return entities.gather(self.item_entities)

    def query_vector(self, user_id: int) -> np.ndarray:
        """The per-user ANN query: ``u`` for dot scoring, ``u + r`` for TransE."""
        entities = self.store.table(self.entity_table)
        u = entities.gather([int(self.user_entities[int(user_id)])])[0]
        u = u.astype(np.float64)
        return u if self.relation_id is None else u + self._relation()

    def score_items(self, user_id: int, item_ids) -> np.ndarray:
        """Exact scores for a candidate subset (gathers only those rows)."""
        self.fitted_dataset
        item_ids = np.asarray(item_ids, dtype=np.int64)
        entities = self.store.table(self.entity_table)
        u = entities.gather([int(self.user_entities[int(user_id)])])[0]
        u = u.astype(np.float64)
        items = entities.gather(self.item_entities[item_ids]).astype(np.float64)
        if self.relation_id is None:
            return items @ u
        delta = (u + self._relation())[None, :] - items
        return -(delta**2).sum(axis=1)
