"""The on-disk shard file format: header + checksummed float32 rows.

A shard holds a contiguous row range of one embedding table::

    offset 0   magic            b"KGSHARD1"              (8 bytes)
    offset 8   header length    uint32 little-endian     (4 bytes)
    offset 12  header           UTF-8 JSON               (header_len bytes)
    offset 12+header_len        payload: rows * dim float32, little-endian,
                                row-major

The JSON header carries ``version`` (format schema), ``table``,
``row_start`` / ``rows`` / ``dim`` (the slice this shard covers),
``dtype`` (always ``"<f4"`` in v1), ``seed`` (provenance of the run that
wrote it) and ``crc32`` — the zlib CRC-32 of the *payload* bytes.  The
manifest (:mod:`repro.store.manifest`) records the same CRC per shard, so
a shard can be verified standalone *and* cross-checked against the
generation that references it.

All verification failures raise
:class:`~repro.core.exceptions.StoreCorruptionError` with the reason;
callers decide whether that quarantines a shard or fails a generation.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.exceptions import StoreCorruptionError

from .io import StoreIO

__all__ = [
    "SHARD_MAGIC",
    "SHARD_VERSION",
    "ShardInfo",
    "write_shard",
    "read_shard_header",
    "verify_shard",
    "load_shard",
    "map_shard",
]

SHARD_MAGIC = b"KGSHARD1"
SHARD_VERSION = 1
_DTYPE = "<f4"  # float32 little-endian; the only payload dtype in v1
_LEN_STRUCT = struct.Struct("<I")


@dataclass(frozen=True)
class ShardInfo:
    """Manifest-side description of one shard file."""

    file: str
    row_start: int
    rows: int
    crc32: int

    def to_json(self) -> dict:
        return {
            "file": self.file,
            "row_start": self.row_start,
            "rows": self.rows,
            "crc32": self.crc32,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ShardInfo":
        return cls(
            file=str(obj["file"]),
            row_start=int(obj["row_start"]),
            rows=int(obj["rows"]),
            crc32=int(obj["crc32"]),
        )


def write_shard(
    io: StoreIO,
    path: str | Path,
    table: str,
    row_start: int,
    values: np.ndarray,
    seed: int | None = None,
) -> ShardInfo:
    """Write ``values`` (2-d, cast to float32) as the shard at ``path``.

    The write is crash-safe: the full blob goes to ``<path>.tmp`` (written
    + fsync'd through ``io``), then is atomically renamed over ``path``.
    Returns the :class:`ShardInfo` the manifest should record.
    """
    path = Path(path)
    values = np.ascontiguousarray(values, dtype=_DTYPE)
    if values.ndim != 2:
        raise StoreCorruptionError(f"shard values must be 2-d, got {values.ndim}-d")
    payload = values.tobytes()
    crc = zlib.crc32(payload)
    header = {
        "version": SHARD_VERSION,
        "table": table,
        "row_start": int(row_start),
        "rows": int(values.shape[0]),
        "dim": int(values.shape[1]),
        "dtype": _DTYPE,
        "seed": seed,
        "crc32": crc,
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    data = SHARD_MAGIC + _LEN_STRUCT.pack(len(blob)) + blob + payload
    tmp = path.with_name(path.name + ".tmp")
    io.write_bytes(tmp, data)
    io.replace(tmp, path)
    return ShardInfo(
        file=path.name, row_start=int(row_start), rows=int(values.shape[0]), crc32=crc
    )


def read_shard_header(path: str | Path) -> tuple[dict, int]:
    """Parse and sanity-check the header; returns ``(header, payload_offset)``."""
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(len(SHARD_MAGIC) + _LEN_STRUCT.size)
            if len(prefix) < len(SHARD_MAGIC) + _LEN_STRUCT.size:
                raise StoreCorruptionError(f"{path.name}: truncated before header")
            if prefix[: len(SHARD_MAGIC)] != SHARD_MAGIC:
                raise StoreCorruptionError(f"{path.name}: bad magic")
            (header_len,) = _LEN_STRUCT.unpack(prefix[len(SHARD_MAGIC) :])
            if header_len > 1 << 20:
                raise StoreCorruptionError(f"{path.name}: implausible header length")
            blob = handle.read(header_len)
            if len(blob) < header_len:
                raise StoreCorruptionError(f"{path.name}: truncated header")
    except OSError as exc:
        raise StoreCorruptionError(f"{path.name}: unreadable ({exc})") from exc
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(f"{path.name}: corrupt header ({exc})") from exc
    if header.get("version") != SHARD_VERSION:
        raise StoreCorruptionError(
            f"{path.name}: unsupported shard version {header.get('version')!r}"
        )
    if header.get("dtype") != _DTYPE:
        raise StoreCorruptionError(
            f"{path.name}: unsupported dtype {header.get('dtype')!r}"
        )
    # A flipped byte inside the JSON can mutate a key or value while still
    # parsing — a header is only trusted once every required field is
    # present with a sane value.
    for key in ("table", "row_start", "rows", "dim", "crc32"):
        if key not in header:
            raise StoreCorruptionError(f"{path.name}: header missing {key!r}")
    try:
        bounds = [int(header[k]) for k in ("row_start", "rows", "dim", "crc32")]
    except (TypeError, ValueError) as exc:
        raise StoreCorruptionError(
            f"{path.name}: non-numeric header field ({exc})"
        ) from exc
    if bounds[0] < 0 or bounds[1] < 1 or bounds[2] < 1:
        raise StoreCorruptionError(
            f"{path.name}: implausible shard bounds "
            f"row_start={bounds[0]} rows={bounds[1]} dim={bounds[2]}"
        )
    return header, len(SHARD_MAGIC) + _LEN_STRUCT.size + header_len


def verify_shard(
    path: str | Path,
    expected: ShardInfo | None = None,
    dim: int | None = None,
) -> dict:
    """Full verification: header, payload length, and content CRC-32.

    ``expected`` cross-checks the manifest's view of the shard (row range
    and CRC); ``dim`` cross-checks the table's width.  Returns the parsed
    header on success, raises :class:`StoreCorruptionError` otherwise.
    """
    path = Path(path)
    header, offset = read_shard_header(path)
    rows, width = int(header["rows"]), int(header["dim"])
    expected_bytes = rows * width * 4
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            payload = handle.read(expected_bytes + 1)
    except OSError as exc:
        raise StoreCorruptionError(f"{path.name}: unreadable payload ({exc})") from exc
    if len(payload) != expected_bytes:
        raise StoreCorruptionError(
            f"{path.name}: payload is {len(payload)} bytes, "
            f"expected {expected_bytes} (torn write?)"
        )
    crc = zlib.crc32(payload)
    if crc != int(header["crc32"]):
        raise StoreCorruptionError(
            f"{path.name}: payload checksum {crc} != header checksum "
            f"{header['crc32']} (bitrot?)"
        )
    if expected is not None:
        if (
            int(header["row_start"]) != expected.row_start
            or rows != expected.rows
            or crc != expected.crc32
        ):
            raise StoreCorruptionError(
                f"{path.name}: header disagrees with manifest "
                f"(rows {header['row_start']}+{rows} crc {crc} vs manifest "
                f"rows {expected.row_start}+{expected.rows} crc {expected.crc32})"
            )
    if dim is not None and width != dim:
        raise StoreCorruptionError(
            f"{path.name}: shard dim {width} != table dim {dim}"
        )
    return header


def load_shard(path: str | Path, verify: bool = True) -> tuple[dict, np.ndarray]:
    """Read a shard into memory; returns ``(header, float32 rows array)``."""
    path = Path(path)
    if verify:
        verify_shard(path)
    header, offset = read_shard_header(path)
    rows, dim = int(header["rows"]), int(header["dim"])
    with open(path, "rb") as handle:
        handle.seek(offset)
        payload = handle.read(rows * dim * 4)
    values = np.frombuffer(payload, dtype=_DTYPE).reshape(rows, dim)
    return header, values.copy()


def map_shard(path: str | Path) -> tuple[dict, np.ndarray]:
    """Memory-map a shard's payload read-only; returns ``(header, memmap)``.

    No checksum pass — callers verify first (recovery does, on open) so
    the map itself moves zero payload bytes.
    """
    path = Path(path)
    header, offset = read_shard_header(path)
    rows, dim = int(header["rows"]), int(header["dim"])
    mapped = np.memmap(path, dtype=_DTYPE, mode="r", offset=offset, shape=(rows, dim))
    return header, mapped
