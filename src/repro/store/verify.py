"""fsck for embedding stores: inspect, render, quarantine, repair.

Pure functions over a store *directory* (no live store object), shared by
three consumers:

* :meth:`MmapShardStore.open <repro.store.mmap.MmapShardStore.open>` uses
  :func:`check_generation` to walk generations newest-first and
  :func:`quarantine_debris` to sweep crash leftovers aside;
* ``python -m repro store-verify <path>`` renders :func:`inspect_store`
  as a per-shard / per-generation status report;
* ``store-verify --repair`` calls :func:`repair_store`, which quarantines
  everything inconsistent and guarantees the store re-opens at its last
  consistent generation.

Quarantine moves files into ``quarantine/`` inside the store directory —
nothing is ever deleted, so a forensic look at *why* a shard went bad
stays possible.  A file referenced by any healthy generation is
protected and never quarantined, even if a broken generation also
references it (shards are shared across generations by design).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import StoreCorruptionError, StoreError

from .manifest import load_manifest, referenced_files, scan_manifests
from .shard import ShardInfo, verify_shard

__all__ = [
    "SHARDS_DIR",
    "QUARANTINE_DIR",
    "ShardStatus",
    "GenerationStatus",
    "StoreReport",
    "check_generation",
    "inspect_store",
    "render_report",
    "quarantine_debris",
    "repair_store",
]

SHARDS_DIR = "shards"
QUARANTINE_DIR = "quarantine"


@dataclass(frozen=True)
class ShardStatus:
    """Verification outcome for one shard referenced by one generation."""

    file: str
    ok: bool
    reason: str = ""


@dataclass(frozen=True)
class GenerationStatus:
    """Verification outcome for one manifest generation."""

    generation: int
    manifest_file: str
    ok: bool
    reason: str = ""
    shards: tuple[ShardStatus, ...] = ()

    @property
    def bad_shards(self) -> tuple[ShardStatus, ...]:
        return tuple(s for s in self.shards if not s.ok)


@dataclass(frozen=True)
class StoreReport:
    """Everything ``store-verify`` knows about a store directory."""

    directory: str
    current: int | None
    generations: tuple[GenerationStatus, ...] = ()  # ascending
    orphans: tuple[str, ...] = ()  # unreferenced files under shards/
    tmp_files: tuple[str, ...] = ()  # leftover *.tmp anywhere
    quarantined: tuple[str, ...] = ()  # current quarantine/ contents


def check_generation(directory: str | Path, manifest: dict) -> GenerationStatus:
    """Verify every shard a (parsed) manifest references, checksums included."""
    directory = Path(directory)
    statuses: list[ShardStatus] = []
    for name, spec in sorted(manifest.get("tables", {}).items()):
        dim = int(spec["dim"])
        for shard in spec["shards"]:
            info = ShardInfo.from_json(shard)
            path = directory / SHARDS_DIR / info.file
            try:
                if not path.is_file():
                    raise StoreCorruptionError(f"{info.file}: missing")
                verify_shard(path, expected=info, dim=dim)
            except StoreCorruptionError as exc:
                statuses.append(ShardStatus(file=info.file, ok=False, reason=str(exc)))
            else:
                statuses.append(ShardStatus(file=info.file, ok=True))
    bad = [s for s in statuses if not s.ok]
    gen = int(manifest["generation"])
    return GenerationStatus(
        generation=gen,
        manifest_file=f"manifest-g{gen:08d}.json",
        ok=not bad,
        reason=f"{len(bad)} bad shard(s)" if bad else "",
        shards=tuple(statuses),
    )


def _tmp_files(directory: Path) -> list[Path]:
    found = sorted(directory.glob("*.tmp"))
    shards = directory / SHARDS_DIR
    if shards.is_dir():
        found.extend(sorted(shards.glob("*.tmp")))
    return found


def inspect_store(directory: str | Path) -> StoreReport:
    """Walk every generation and shard of a store; verify all checksums."""
    directory = Path(directory)
    if not directory.is_dir():
        raise StoreError(f"{directory} is not a directory")
    entries = scan_manifests(directory)
    if not entries:
        raise StoreError(f"{directory} is not an embedding store (no manifests)")
    gen_statuses: list[GenerationStatus] = []
    referenced: set[str] = set()
    for gen, path in entries:
        try:
            manifest = load_manifest(path)
        except (StoreCorruptionError, StoreError) as exc:
            gen_statuses.append(
                GenerationStatus(
                    generation=gen, manifest_file=path.name, ok=False,
                    reason=str(exc),
                )
            )
            continue
        referenced |= referenced_files(manifest)
        gen_statuses.append(check_generation(directory, manifest))
    ok_gens = [g.generation for g in gen_statuses if g.ok]
    shards_dir = directory / SHARDS_DIR
    orphans = []
    if shards_dir.is_dir():
        orphans = sorted(
            p.name
            for p in shards_dir.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
            and p.name not in referenced
        )
    quarantine = directory / QUARANTINE_DIR
    quarantined = (
        tuple(sorted(p.name for p in quarantine.iterdir()))
        if quarantine.is_dir()
        else ()
    )
    return StoreReport(
        directory=str(directory),
        current=max(ok_gens) if ok_gens else None,
        generations=tuple(gen_statuses),
        orphans=tuple(orphans),
        tmp_files=tuple(str(p.relative_to(directory)) for p in _tmp_files(directory)),
        quarantined=quarantined,
    )


def render_report(report: StoreReport) -> str:
    """Human-readable fsck output (stable ordering, no timestamps)."""
    lines = [f"store: {report.directory}"]
    lines.append(
        f"current generation: "
        f"{report.current if report.current is not None else 'NONE (unrecoverable)'}"
    )
    lines.append("generation history:")
    for gen in report.generations:
        verdict = "ok" if gen.ok else f"BROKEN ({gen.reason})"
        shard_note = ""
        if gen.shards:
            good = sum(1 for s in gen.shards if s.ok)
            shard_note = f"  [{good}/{len(gen.shards)} shards ok]"
        lines.append(f"  g{gen.generation:08d}  {verdict}{shard_note}")
        for shard in gen.bad_shards:
            lines.append(f"      {shard.file}: {shard.reason}")
    if report.orphans:
        lines.append("orphan shards (unreferenced by any manifest):")
        lines.extend(f"  {name}" for name in report.orphans)
    if report.tmp_files:
        lines.append("leftover temp files:")
        lines.extend(f"  {name}" for name in report.tmp_files)
    if report.quarantined:
        lines.append("quarantine contents:")
        lines.extend(f"  {name}" for name in report.quarantined)
    return "\n".join(lines)


def _move_to_quarantine(directory: Path, path: Path, actions: list[str]) -> None:
    quarantine = directory / QUARANTINE_DIR
    quarantine.mkdir(exist_ok=True)
    target = quarantine / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine / f"{path.name}.{suffix}"
    try:
        os.replace(path, target)
    except OSError:  # pragma: no cover - cross-device or racing cleanup
        return
    actions.append(f"quarantined {path.name}")


def quarantine_debris(
    directory: str | Path, report: StoreReport | None = None
) -> list[str]:
    """Sweep crash leftovers into ``quarantine/``; returns actions taken.

    Quarantines: temp files, orphan shards, broken-generation manifests,
    and shards referenced *only* by broken generations.  Files referenced
    by at least one healthy generation are protected.
    """
    directory = Path(directory)
    if report is None:
        report = inspect_store(directory)
    actions: list[str] = []
    protected: set[str] = set()
    for gen in report.generations:
        if not gen.ok:
            continue
        try:
            manifest = load_manifest(directory / gen.manifest_file)
        except (StoreCorruptionError, StoreError):  # pragma: no cover - raced
            continue
        protected |= referenced_files(manifest)
    for tmp in _tmp_files(directory):
        _move_to_quarantine(directory, tmp, actions)
    shards_dir = directory / SHARDS_DIR
    for name in report.orphans:
        _move_to_quarantine(directory, shards_dir / name, actions)
    for gen in report.generations:
        if gen.ok:
            continue
        manifest_path = directory / gen.manifest_file
        condemned: set[str] = set()
        try:
            manifest = load_manifest(manifest_path)
        except (StoreCorruptionError, StoreError):
            pass  # unparseable: its shards are already orphans
        else:
            condemned = referenced_files(manifest) - protected
        for name in sorted(condemned):
            path = shards_dir / name
            if path.is_file():
                _move_to_quarantine(directory, path, actions)
        if manifest_path.is_file():
            _move_to_quarantine(directory, manifest_path, actions)
    return actions


def repair_store(directory: str | Path) -> tuple[StoreReport, list[str]]:
    """Restore the last consistent generation; quarantine everything else.

    Returns ``(post-repair report, actions)``.  Raises
    :class:`~repro.core.exceptions.StoreError` when no generation is
    consistent — there is nothing to restore *to*, and quarantining the
    evidence would only destroy it.
    """
    directory = Path(directory)
    before = inspect_store(directory)
    if before.current is None:
        raise StoreError(
            f"{directory}: no consistent generation to repair to "
            "(every manifest or its shards failed verification)"
        )
    actions = quarantine_debris(directory, report=before)
    return inspect_store(directory), actions
