"""repro.telemetry — tracing, metrics, and profiling across the stack.

The observability layer the rest of the repo reports into (see
``docs/observability.md``):

* :mod:`repro.telemetry.tracer` — nestable :class:`Span`\\ s on an
  injectable clock with a bounded record buffer.
* :mod:`repro.telemetry.metrics` — :class:`MetricRegistry` of labeled
  counters, gauges, and fixed-bucket histograms with exact small-sample
  p50/p90/p99.
* :mod:`repro.telemetry.profiler` — :func:`timed` decorators and
  :class:`timed_block` regions.
* :mod:`repro.telemetry.export` — deterministic JSONL capture files.
* :mod:`repro.telemetry.report` — the ``python -m repro trace-report``
  renderer (span tree, hotspots, outcome reconciliation).

Everything is **off by default**: components hold :data:`NULL` (a
:class:`NullTelemetry`) unless a :class:`Telemetry` is threaded in via
``TrainingRuntime(telemetry=...)``, ``RecommenderService(telemetry=...)``,
``run_panel(telemetry=...)``, or activated for deep call sites with
:func:`activated`.  Instrumented hot loops guard on the single
``telemetry.enabled`` attribute, so the disabled path stays at
no-measurable-overhead and every bitwise-determinism guarantee in the
repo is unaffected by turning telemetry on or off.
"""

from __future__ import annotations

from .base import NULL, NullTelemetry, Telemetry, activate, activated, get_active
from .export import (
    SCHEMA_VERSION,
    TraceCapture,
    export_records,
    read_jsonl,
    validate_records,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    exact_quantile,
)
from .profiler import timed, timed_block
from .report import check_trace, render_trace_report, trace_report
from .tracer import Span, SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "get_active",
    "activate",
    "activated",
    "Tracer",
    "Span",
    "SpanRecord",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "exact_quantile",
    "timed",
    "timed_block",
    "SCHEMA_VERSION",
    "TraceCapture",
    "export_records",
    "write_jsonl",
    "read_jsonl",
    "validate_records",
    "render_trace_report",
    "trace_report",
    "check_trace",
]
