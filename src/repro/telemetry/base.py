"""The `Telemetry` facade, its no-op twin, and the active-telemetry slot.

Every instrumented call site in the repo follows the same contract::

    tel = get_active()          # or a Telemetry threaded in explicitly
    if tel.enabled:             # <- the entire disabled-path cost
        span = tel.begin("kg/corrupt_batch", batch=n)
        ...
        tel.end(span, rounds=r)

:class:`NullTelemetry` exists so code that *holds* a telemetry reference
(service constructors, ``TrainingRuntime``) can call through it without
``None`` checks, but hot loops must still guard on ``enabled`` — a guarded
branch costs one attribute load, while even a no-op method call costs a
frame.  The acceptance bar for instrumentation in this repo is the guard,
not the null object.

The *active* telemetry is a module-level slot used by call sites too deep
to thread a parameter through (negative sampling inside a batch loss,
optimizer steps inside ``fit``).  ``KGEModel.fit`` and ``run_panel``
activate their telemetry for the duration of the call, so spans emitted by
those inner layers nest under the caller's spans in one shared tracer.
The slot is deliberately last-writer-wins and not an async-context
variable: this repo's trainers and services are single-process loops, and
determinism of exported traces matters more than concurrent isolation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from repro.core.clock import system_clock

from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .tracer import Span, Tracer

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL",
    "get_active",
    "activate",
    "activated",
]


class Telemetry:
    """One tracer + one metric registry behind a single ``enabled`` flag.

    Threading a single object (rather than a tracer and a registry
    separately) is what lets instrumentation across training, serving, and
    evaluation land in one export — and what lets ``ServiceMetrics`` sit
    on the same registry as the trainer's gauges.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = system_clock,
        max_spans: int = 100_000,
    ) -> None:
        self.clock = clock
        self.tracer = Tracer(clock=clock, max_spans=max_spans)
        self.metrics = MetricRegistry()

    # ------------------------------------------------------------------ #
    # tracing
    # ------------------------------------------------------------------ #
    def begin(self, name: str, **attrs) -> Span:
        return self.tracer.begin(name, **attrs)

    def end(self, span: Span, **attrs):
        return self.tracer.end(span, **attrs)

    def span(self, name: str, **attrs) -> Span:
        """Context-manager form: ``with tel.span("phase") as sp: ...``"""
        return self.tracer.begin(name, **attrs)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self.metrics.histogram(name, **labels)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def export_records(self) -> list[dict]:
        from .export import export_records

        return export_records(self)

    def export_jsonl(self, path) -> str:
        from .export import write_jsonl

        return write_jsonl(path, self)


class _NullSpan:
    """Reusable inert span: accepts everything, records nothing."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullInstrument:
    """Inert counter/gauge/histogram stand-in."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def quantile(self, q) -> float:
        return float("nan")


_NULL_SPAN = _NullSpan()
_NULL_INSTRUMENT = _NullInstrument()


class NullTelemetry:
    """The disabled telemetry: same surface as :class:`Telemetry`, no state.

    All methods return shared inert singletons, so even un-guarded call
    sites allocate nothing.  ``NULL`` is the canonical instance.
    """

    enabled = False
    tracer = None
    metrics = None

    def begin(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def end(self, span, **attrs) -> None:
        return None

    span = begin

    def counter(self, name: str, **labels) -> _NullInstrument:
        return _NULL_INSTRUMENT

    gauge = counter
    histogram = counter

    def export_records(self) -> list[dict]:
        return []


#: The canonical disabled telemetry (use this, don't construct your own).
NULL = NullTelemetry()

_active: Telemetry | NullTelemetry = NULL


def get_active() -> Telemetry | NullTelemetry:
    """The telemetry deep call sites report to (``NULL`` unless activated)."""
    return _active


def activate(telemetry: Telemetry | NullTelemetry | None):
    """Install ``telemetry`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = NULL if telemetry is None else telemetry
    return previous


@contextmanager
def activated(telemetry: Telemetry | NullTelemetry | None):
    """Scope-bound :func:`activate` (restores the previous on exit)."""
    previous = activate(telemetry)
    try:
        yield telemetry
    finally:
        activate(previous)
