"""JSONL export and re-import of one telemetry capture.

One capture is one file: a ``header`` record, every finished span in end
order, then one record per metric series (sorted).  Everything is plain
``json.dumps(sort_keys=True)``, so a seeded run on a
:class:`~repro.core.clock.ManualClock` exports byte-identical files —
the chaos-smoke CI job relies on that, and ``trace-report`` consumes the
format without access to the process that produced it.

Schema (version 1)::

    {"record": "header", "version": 1, "spans": N, "dropped_spans": D,
     "metrics": M}
    {"record": "span", "span_id": 3, "parent_id": 1, "name": "fit/epoch",
     "start": 0.0, "end": 1.5, "duration": 1.5, "attrs": {...}}
    {"record": "metric", "kind": "counter", "name": "serve.requests",
     "labels": {}, "value": 300}

:func:`validate_records` is the machine check behind
``trace-report --check``: it returns a list of human-readable schema
violations (empty means valid).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import DataError

from .tracer import SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "TraceCapture",
    "export_records",
    "write_jsonl",
    "read_jsonl",
    "parse_records",
    "validate_records",
]

SCHEMA_VERSION = 1

_SPAN_FIELDS = {"record", "span_id", "parent_id", "name", "start", "end",
                "duration", "attrs"}
_METRIC_FIELDS = {"record", "kind", "name", "labels"}
_METRIC_KINDS = {"counter", "gauge", "histogram"}


@dataclass
class TraceCapture:
    """A parsed capture: header + spans + metric records."""

    header: dict = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)

    @property
    def version(self) -> int:
        return int(self.header.get("version", 0))


def export_records(telemetry) -> list[dict]:
    """Header + span + metric records for ``telemetry`` (JSON-safe dicts)."""
    spans = telemetry.tracer.export_records()
    metrics = telemetry.metrics.export_records()
    header = {
        "record": "header",
        "version": SCHEMA_VERSION,
        "spans": len(spans),
        "dropped_spans": telemetry.tracer.dropped,
        "metrics": len(metrics),
    }
    return [header, *spans, *metrics]


def write_jsonl(path, telemetry) -> str:
    """Write ``telemetry``'s capture to ``path``; returns the path written."""
    path = Path(path)
    lines = [json.dumps(r, sort_keys=True) for r in export_records(telemetry)]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


def parse_records(records: list[dict]) -> TraceCapture:
    """Group already-decoded records into a :class:`TraceCapture`."""
    capture = TraceCapture()
    for r in records:
        kind = r.get("record")
        if kind == "header":
            capture.header = r
        elif kind == "span":
            capture.spans.append(
                SpanRecord(
                    span_id=int(r["span_id"]),
                    parent_id=None if r["parent_id"] is None else int(r["parent_id"]),
                    name=str(r["name"]),
                    start=float(r["start"]),
                    end=float(r["end"]),
                    attrs=dict(r.get("attrs") or {}),
                )
            )
        elif kind == "metric":
            capture.metrics.append(r)
        else:
            raise DataError(f"unknown trace record type {kind!r}")
    return capture


def read_jsonl(path) -> TraceCapture:
    """Parse a capture file; raises :class:`DataError` on malformed input."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"trace file {path} does not exist")
    records = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise DataError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
    try:
        return parse_records(records)
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"{path}: malformed trace record: {exc!r}") from exc


def validate_records(records: list[dict]) -> list[str]:
    """Schema-check decoded records; returns violations (empty = valid)."""
    errors: list[str] = []
    headers = [r for r in records if r.get("record") == "header"]
    if len(headers) != 1:
        errors.append(f"expected exactly one header record, found {len(headers)}")
    elif headers[0].get("version") != SCHEMA_VERSION:
        errors.append(
            f"unsupported schema version {headers[0].get('version')!r}"
        )
    span_count = metric_count = 0
    span_ids = set()
    for i, r in enumerate(records):
        kind = r.get("record")
        if kind == "span":
            span_count += 1
            missing = _SPAN_FIELDS - r.keys()
            if missing:
                errors.append(f"record {i}: span missing fields {sorted(missing)}")
                continue
            if r["end"] < r["start"]:
                errors.append(f"record {i}: span ends before it starts")
            span_ids.add(r["span_id"])
        elif kind == "metric":
            metric_count += 1
            missing = _METRIC_FIELDS - r.keys()
            if missing:
                errors.append(f"record {i}: metric missing fields {sorted(missing)}")
                continue
            if r["kind"] not in _METRIC_KINDS:
                errors.append(f"record {i}: unknown metric kind {r['kind']!r}")
            elif r["kind"] == "counter" and "value" not in r:
                errors.append(f"record {i}: counter has no value")
            elif r["kind"] == "histogram" and "count" not in r:
                errors.append(f"record {i}: histogram has no count")
        elif kind != "header":
            errors.append(f"record {i}: unknown record type {kind!r}")
    # Parent references must resolve within the capture (or be dropped
    # spans, which the header admits to).
    dropped = headers[0].get("dropped_spans", 0) if headers else 0
    if not dropped:
        for i, r in enumerate(records):
            if r.get("record") == "span" and r.get("parent_id") is not None:
                if r["parent_id"] not in span_ids:
                    errors.append(
                        f"record {i}: parent span {r['parent_id']} not in capture"
                    )
    if headers:
        h = headers[0]
        if "spans" in h and h["spans"] != span_count:
            errors.append(
                f"header claims {h['spans']} spans, file has {span_count}"
            )
        if "metrics" in h and h["metrics"] != metric_count:
            errors.append(
                f"header claims {h['metrics']} metrics, file has {metric_count}"
            )
    return errors
