"""Metric instruments and the registry that owns them.

Three instrument kinds, all zero-dependency and JSON-exportable:

* :class:`Counter` — monotonically increasing totals (requests served,
  sparse rows updated, negative-sampling fallbacks).
* :class:`Gauge` — last-written point-in-time values (batch loss, gradient
  norm), with running min/max so a snapshot still shows the envelope.
* :class:`Histogram` — fixed-bucket distribution with **exact** small-
  sample quantiles: every observation is retained (up to ``max_samples``)
  and quantiles use the nearest-rank method, so ``p99`` of 10 samples is
  the sample maximum rather than an interpolated value that no request
  actually experienced.  Past the retention cap, quantiles degrade to the
  bucket upper-bound estimate (the usual Prometheus-style answer) and the
  snapshot says which regime produced the number.  Long-running load
  tests can instead opt into ``reservoir=True``: past the cap the sample
  set becomes a seeded Algorithm-R reservoir (uniform over all
  observations), so quantiles stay unbiased nearest-rank estimates
  instead of bucket bounds.  The default mode's exports stay
  byte-identical.

Series are labeled: ``registry.counter("serve.status", status="ok")`` and
``status="degraded"`` are distinct series under one name.  Snapshots are
plain dicts (JSON-safe), and :meth:`MetricRegistry.merge` folds one
registry into another so per-shard registries can be combined.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from math import ceil, inf, isnan, nan
from random import Random

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_BUCKETS",
    "exact_quantile",
]

#: Default histogram bounds: geometric latency-flavored edges from 100 µs
#: to ~100 s (an implicit +inf bucket is always appended).
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
    for base in (1.0, 2.5, 5.0)
)


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted list (NaN when empty).

    ``rank = ceil(q/100 * n)`` clamped to ``[1, n]`` — the returned number
    is always one of the observed values, which is what makes small-sample
    p99s honest: with 10 samples the old linear-interpolation estimate
    reported a value between the two largest observations, a latency no
    request ever saw.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"quantile must lie in [0, 100], got {q}")
    n = len(sorted_values)
    if n == 0:
        return nan
    rank = min(n, max(1, ceil(q / 100.0 * n)))
    return sorted_values[rank - 1]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward; use a Gauge")
        self.value += amount

    def snapshot(self) -> dict:
        v = self.value
        return {"value": int(v) if float(v).is_integer() else float(v)}

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Last-written value plus the running envelope and write count."""

    __slots__ = ("value", "min", "max", "count")

    def __init__(self) -> None:
        self.value = nan
        self.min = inf
        self.max = -inf
        self.count = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        return {
            "value": self.value,
            "min": self.min if self.count else nan,
            "max": self.max if self.count else nan,
            "count": self.count,
        }

    def merge(self, other: "Gauge") -> None:
        # "last write" across registries is arbitrary; keep the other's
        # value when this gauge was never written, else keep ours.
        if self.count == 0:
            self.value = other.value
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.count += other.count


class Histogram:
    """Fixed-bucket distribution with exact small-sample quantiles.

    With ``reservoir=True`` the retained sample set stays a uniform
    random subset of *all* observations past ``max_samples`` (Vitter's
    Algorithm R, seeded, deterministic), so quantiles remain unbiased
    nearest-rank estimates instead of bucket upper bounds.  The default
    (``reservoir=False``) keeps the first ``max_samples`` observations
    and degrades to bucket bounds, byte-identical to prior exports.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max",
                 "max_samples", "reservoir", "reservoir_seed", "_samples",
                 "_rng")

    def __init__(
        self,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        max_samples: int = 4096,
        reservoir: bool = False,
        reservoir_seed: int = 0,
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self.count = 0
        self.total = 0.0
        self.min = inf
        self.max = -inf
        self.max_samples = max_samples
        self.reservoir = bool(reservoir)
        self.reservoir_seed = int(reservoir_seed)
        self._samples: list[float] = []  # kept sorted, exact while small
        self._rng = Random(self.reservoir_seed) if self.reservoir else None

    # ------------------------------------------------------------------ #
    def observe(self, value: float) -> None:
        value = float(value)
        if isnan(value):
            raise ValueError("cannot observe NaN")
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            insort(self._samples, value)
        elif self.reservoir:
            # Algorithm R: observation ``count`` replaces a uniformly
            # chosen reservoir slot with probability max_samples/count.
            # The list is sorted, but deleting index ``j`` still evicts a
            # uniformly chosen *element*, which is all uniformity needs.
            j = self._rng.randrange(self.count)
            if j < self.max_samples:
                del self._samples[j]
                insort(self._samples, value)

    @property
    def exact(self) -> bool:
        """True while every observation is retained (quantiles are exact)."""
        return self.count == len(self._samples)

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (NaN before any observation).

        Exact (nearest-rank over retained samples) while :attr:`exact`;
        in reservoir mode, nearest-rank over the uniform reservoir (an
        unbiased estimate); otherwise the upper bound of the bucket
        holding the target rank, clamped to the observed max for the
        overflow bucket.
        """
        if self.count == 0:
            return exact_quantile([], q)  # validates q, returns nan
        if self.exact or self.reservoir:
            return exact_quantile(self._samples, q)
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must lie in [0, 100], got {q}")
        rank = min(self.count, max(1, ceil(q / 100.0 * self.count)))
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if i < len(self.bounds):
                    return min(self.bounds[i], self.max)
                return self.max
        return self.max  # pragma: no cover - ranks always land in a bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else nan

    def snapshot(self) -> dict:
        snap = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else nan,
            "max": self.max if self.count else nan,
            "mean": self.mean,
            "p50": self.quantile(50.0),
            "p90": self.quantile(90.0),
            "p99": self.quantile(99.0),
            "exact": self.exact,
            "buckets": [
                [le, c]
                for le, c in zip(list(self.bounds) + [inf], self.bucket_counts)
                if c
            ],
        }
        if self.reservoir:
            # Only reservoir-mode snapshots grow this key, so default-mode
            # exports stay byte-identical to prior versions.
            snap["sampling"] = "reservoir"
        return snap

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        if self.reservoir:
            # Approximate merge: re-draw a seeded uniform subset of the
            # pooled retained samples (each side's samples are themselves
            # uniform over what that side observed).
            pool = sorted(self._samples + list(other._samples))
            if len(pool) <= self.max_samples:
                self._samples = pool
            else:
                self._samples = sorted(
                    self._rng.sample(pool, self.max_samples)
                )
            return
        for v in other._samples:
            if len(self._samples) >= self.max_samples:
                break
            insort(self._samples, v)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def render_series(name: str, labels: tuple) -> str:
    """Canonical ``name{k=v,...}`` rendering used in snapshots/exports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricRegistry:
    """Get-or-create registry of labeled metric series.

    A series is identified by ``(name, labels)``; the first access creates
    the instrument and later accesses return the same object regardless of
    keyword order.  Asking for an existing series with a different
    instrument kind raises — one name means one kind.
    """

    def __init__(self) -> None:
        self._series: dict[tuple, tuple[str, object]] = {}

    # ------------------------------------------------------------------ #
    def _get(self, kind: str, name: str, labels: dict, **init):
        key = _series_key(name, labels)
        entry = self._series.get(key)
        if entry is None:
            instrument = _KINDS[kind](**init)
            self._series[key] = (kind, instrument)
            return instrument
        existing_kind, instrument = entry
        if existing_kind != kind:
            raise ValueError(
                f"metric {render_series(*key)!r} is a {existing_kind}, "
                f"requested as {kind}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] | None = None,
        max_samples: int | None = None,
        reservoir: bool | None = None,
        reservoir_seed: int | None = None,
        **labels,
    ) -> Histogram:
        init = {}
        if bounds is not None:
            init["bounds"] = tuple(bounds)
        if max_samples is not None:
            init["max_samples"] = max_samples
        if reservoir is not None:
            init["reservoir"] = reservoir
        if reservoir_seed is not None:
            init["reservoir_seed"] = reservoir_seed
        return self._get("histogram", name, labels, **init)

    # ------------------------------------------------------------------ #
    def series(self):
        """Iterate ``(name, labels, kind, instrument)`` in sorted order."""
        for (name, labels), (kind, instrument) in sorted(
            self._series.items(), key=lambda item: item[0]
        ):
            yield name, labels, kind, instrument

    def __len__(self) -> int:
        return len(self._series)

    def snapshot(self) -> dict:
        """JSON-safe ``{rendered_series: instrument_snapshot}`` view."""
        return {
            render_series(name, labels): dict(instrument.snapshot(), kind=kind)
            for name, labels, kind, instrument in self.series()
        }

    def export_records(self) -> list[dict]:
        """One JSONL-ready record per series (sorted, deterministic)."""
        return [
            {
                "record": "metric",
                "kind": kind,
                "name": name,
                "labels": dict(labels),
                **instrument.snapshot(),
            }
            for name, labels, kind, instrument in self.series()
        ]

    def merge(self, other: "MetricRegistry") -> None:
        """Fold ``other``'s series into this registry (summing/combining)."""
        for key, (kind, instrument) in other._series.items():
            entry = self._series.get(key)
            if entry is None:
                if kind == "histogram":
                    clone = Histogram(
                        instrument.bounds,
                        instrument.max_samples,
                        reservoir=instrument.reservoir,
                        reservoir_seed=instrument.reservoir_seed,
                    )
                else:
                    clone = _KINDS[kind]()
                clone.merge(instrument)
                self._series[key] = (kind, clone)
                continue
            existing_kind, mine = entry
            if existing_kind != kind:
                raise ValueError(
                    f"metric {render_series(*key)!r} is a {existing_kind}, "
                    f"merged as {kind}"
                )
            mine.merge(instrument)
