"""Lightweight profiling hooks: timer decorators and timing blocks.

:func:`timed` wraps a function in a span named after it (or an explicit
label), reporting to the *active* telemetry at call time — so a decorated
helper costs one global load and one attribute check per call while
telemetry is off, and its timings appear in whichever capture is active
when it runs.  :func:`timed_block` is the statement form for regions that
are not a whole function.

Aggregation of these timings into self/total hotspot tables lives in
:mod:`repro.telemetry.report` (the ``trace-report`` CLI).
"""

from __future__ import annotations

import functools
from typing import Callable

from .base import get_active

__all__ = ["timed", "timed_block"]


def timed(name_or_fn: str | Callable | None = None, **attrs):
    """Decorator: record a span around every call of the wrapped function.

    Usable bare (``@timed``), with a label (``@timed("eval/rank")``), or
    with static span attributes (``@timed("fit/score", model="TransE")``).
    The observed durations also feed a ``profile.<label>`` histogram so
    hotspots survive span-buffer eviction.
    """

    def decorate(fn: Callable, label: str | None = None) -> Callable:
        span_name = label or f"{fn.__module__.split('.')[-1]}/{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = get_active()
            if not tel.enabled:
                return fn(*args, **kwargs)
            span = tel.begin(span_name, **attrs)
            try:
                return fn(*args, **kwargs)
            finally:
                record = tel.end(span)
                if record is not None:
                    tel.metrics.histogram(f"profile.{span_name}").observe(
                        record.duration
                    )

        return wrapper

    if callable(name_or_fn):  # bare @timed
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)


class timed_block:
    """``with timed_block("phase"):`` — span + profile histogram, or no-op."""

    __slots__ = ("name", "attrs", "_tel", "_span")

    def __init__(self, name: str, **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self._tel = None
        self._span = None

    def __enter__(self):
        tel = get_active()
        if tel.enabled:
            self._tel = tel
            self._span = tel.begin(self.name, **self.attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None:
            if exc is not None:
                self._span.set(error=type(exc).__name__)
            record = self._tel.end(self._span)
            if record is not None:
                self._tel.metrics.histogram(f"profile.{self.name}").observe(
                    record.duration
                )
        return False
