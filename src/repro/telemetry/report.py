"""Render a trace capture as a span tree, hotspot table, and metric digest.

``python -m repro trace-report run.jsonl`` reads a capture written by
``--trace-out`` and prints:

* an **aggregated span tree** — spans grouped by their name-path from the
  root, with call count, total time, and *self* time (total minus time
  spent in child spans), indented by nesting depth;
* **hotspots** — the top-k span names by aggregate self time, i.e. where
  the run actually spent its time once children are subtracted;
* an **outcome summary** — for every span name carrying an ``outcome``
  attribute (``serve/request``, ``panel/model``), counts per outcome.
  These reconcile exactly with the producing component's own counters
  (the serve-demo degradation report), which the chaos CI job asserts;
* a **metric digest** — counters, gauges, and histogram quantiles.

All aggregation is on names and attributes, never on wall-clock
thresholds, so the report is deterministic for captures off a manual
clock and CI can assert on its structure.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from collections import defaultdict

from .export import TraceCapture, read_jsonl, validate_records
from .metrics import render_series
from .tracer import SpanRecord

__all__ = ["render_trace_report", "trace_report", "check_trace", "span_tree_rows"]


def _self_times(spans: list[SpanRecord]) -> dict[int, float]:
    """Per-span self time: duration minus the sum of child durations."""
    child_time: dict[int, float] = defaultdict(float)
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] += s.duration
    return {s.span_id: s.duration - child_time[s.span_id] for s in spans}


def _paths(spans: list[SpanRecord]) -> dict[int, tuple[str, ...]]:
    """Name-path from the root for every span (orphans root themselves)."""
    by_id = {s.span_id: s for s in spans}
    paths: dict[int, tuple[str, ...]] = {}

    def path_of(s: SpanRecord) -> tuple[str, ...]:
        cached = paths.get(s.span_id)
        if cached is not None:
            return cached
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        p = (path_of(parent) + (s.name,)) if parent is not None else (s.name,)
        paths[s.span_id] = p
        return p

    for s in spans:
        path_of(s)
    return paths


def span_tree_rows(spans: list[SpanRecord]) -> list[dict]:
    """Aggregate spans by name-path: one row per path, preorder-sorted."""
    self_times = _self_times(spans)
    paths = _paths(spans)
    agg: dict[tuple[str, ...], dict] = {}
    for s in spans:
        row = agg.setdefault(
            paths[s.span_id],
            {"count": 0, "total": 0.0, "self": 0.0},
        )
        row["count"] += 1
        row["total"] += s.duration
        row["self"] += self_times[s.span_id]
    return [
        {"path": path, "depth": len(path) - 1, "name": path[-1], **row}
        for path, row in sorted(agg.items())
    ]


def _fmt_seconds(v: float) -> str:
    return f"{v:.6f}s"


def render_trace_report(capture: TraceCapture, top: int = 10) -> str:
    """The full human-readable report for one capture."""
    spans = capture.spans
    lines = [
        "trace report",
        "=" * 12,
        f"spans   {len(spans)} "
        f"(dropped {capture.header.get('dropped_spans', 0)})",
        f"metrics {len(capture.metrics)}",
    ]

    rows = span_tree_rows(spans)
    lines.append("")
    lines.append("span tree (count, total, self):")
    if not rows:
        lines.append("  (no spans)")
    width = max((2 * r["depth"] + len(r["name"]) for r in rows), default=0)
    for r in rows:
        label = "  " * r["depth"] + r["name"]
        lines.append(
            f"  {label:<{width}}  x{r['count']:<6d} "
            f"total={_fmt_seconds(r['total'])}  self={_fmt_seconds(r['self'])}"
        )

    # hotspots: aggregate self time by span *name* across all paths
    by_name: dict[str, dict] = defaultdict(lambda: {"count": 0, "self": 0.0})
    for r in rows:
        by_name[r["name"]]["count"] += r["count"]
        by_name[r["name"]]["self"] += r["self"]
    hot = sorted(by_name.items(), key=lambda kv: (-kv[1]["self"], kv[0]))[:top]
    lines.append("")
    lines.append(f"hotspots (top {min(top, len(hot))} by self time):")
    for name, row in hot:
        lines.append(
            f"  {name:<24s} self={_fmt_seconds(row['self'])} "
            f"calls={row['count']}"
        )

    # outcome summary: span names carrying an "outcome" attribute.  A
    # span that also carries a structured "reason" (rejected promotions,
    # rollbacks) is tallied as outcome[reason], so the report breaks a
    # promotion's rejections down by cause (canary vs index_sync vs ...).
    outcomes: dict[str, TallyCounter] = defaultdict(TallyCounter)
    for s in spans:
        if "outcome" in s.attrs:
            key = str(s.attrs["outcome"])
            if "reason" in s.attrs:
                key = f"{key}[{s.attrs['reason']}]"
            outcomes[s.name][key] += 1
    if outcomes:
        lines.append("")
        lines.append("span outcomes:")
        for name in sorted(outcomes):
            tally = ", ".join(
                f"{outcome}={count}"
                for outcome, count in sorted(outcomes[name].items())
            )
            lines.append(f"  {name}: {tally}")

    if capture.metrics:
        lines.append("")
        lines.append("metrics:")
        for m in capture.metrics:
            series = render_series(
                m["name"], tuple(sorted(m.get("labels", {}).items()))
            )
            if m["kind"] == "counter":
                lines.append(f"  {series:<40s} {m['value']}")
            elif m["kind"] == "gauge":
                lines.append(
                    f"  {series:<40s} last={m['value']:.6g} "
                    f"min={m['min']:.6g} max={m['max']:.6g}"
                )
            else:
                lines.append(
                    f"  {series:<40s} n={m['count']} mean={m['mean']:.6g} "
                    f"p50={m['p50']:.6g} p90={m['p90']:.6g} p99={m['p99']:.6g}"
                    f"{' (exact)' if m.get('exact') else ''}"
                )
    return "\n".join(lines)


def trace_report(path, top: int = 10) -> str:
    """Read + render in one call (the CLI entry point)."""
    return render_trace_report(read_jsonl(path), top=top)


def check_trace(path) -> list[str]:
    """Schema-check a capture file; returns violations (empty = valid)."""
    import json
    from pathlib import Path

    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            return [f"line {lineno}: not valid JSON: {exc}"]
    return validate_records(records)
