"""Nestable spans on an injectable clock, with a bounded record buffer.

A :class:`Span` is one timed region of work (``fit/epoch``,
``serve/request``, ``kg/corrupt_batch``) with free-form attributes.  Spans
nest: the tracer keeps a per-thread stack, so a span begun while another is
open records that span as its parent and the finished records reconstruct
the full call tree — which is what ``python -m repro trace-report`` renders.

Design constraints, in order:

* **Cheap when off** — the tracer is only ever reached behind a single
  ``telemetry.enabled`` attribute check at the call site; nothing here
  needs to be fast-pathed for the disabled case.
* **Deterministic** — span ids are sequential, time comes from the
  injected clock, and records are appended in *end* order (children before
  parents), so two seeded runs on a :class:`~repro.core.clock.ManualClock`
  export byte-identical traces.
* **Bounded** — the buffer holds at most ``max_spans`` finished records;
  older records are dropped (and counted) rather than growing without
  limit under a long-lived service.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.clock import system_clock

__all__ = ["Span", "SpanRecord", "Tracer"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, immutable and export-ready."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_json(self) -> dict:
        return {
            "record": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Span:
    """An open span.  Use as a context manager or end via the tracer."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "attrs",
                 "_ended")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict,
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs
        self._ended = False

    def set(self, **attrs) -> "Span":
        """Attach/overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = type(exc).__name__
        self.tracer.end(self)
        return False


class Tracer:
    """Span factory + bounded finished-record buffer.

    Thread-safe: the open-span stack is thread-local (each thread nests
    its own spans), while id allocation and the finished buffer share a
    lock so concurrent threads interleave records without corruption.
    """

    def __init__(
        self,
        clock: Callable[[], float] = system_clock,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock
        self.max_spans = max_spans
        self.dropped = 0
        self._records: deque[SpanRecord] = deque()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name: str, **attrs) -> Span:
        """Open a span as a child of the current thread's innermost span."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(self, span_id, parent_id, name, self.clock(), attrs)
        stack.append(span)
        return span

    #: ``with tracer.span("name"):`` reads better at call sites.
    span = begin

    def end(self, span: Span, **attrs) -> SpanRecord | None:
        """Close ``span`` (idempotent) and append its record to the buffer."""
        if span._ended:
            return None
        span._ended = True
        if attrs:
            span.attrs.update(attrs)
        stack = self._stack()
        # Normal case: LIFO.  A span ended out of order (e.g. an exception
        # path skipped an inner end()) is removed from wherever it sits so
        # the stack cannot poison later parentage.
        if stack and stack[-1] is span:
            stack.pop()
        else:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i:]
                    break
        record = SpanRecord(
            span.span_id, span.parent_id, span.name, span.start,
            self.clock(), span.attrs,
        )
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.max_spans:
                self._records.popleft()
                self.dropped += 1
        return record

    # ------------------------------------------------------------------ #
    def adopt(
        self,
        records: list[SpanRecord],
        parent_id: int | None = None,
        shift: float = 0.0,
    ) -> dict[int, int]:
        """Merge finished spans from *another* tracer into this buffer.

        The process-pool panel runner uses this to fold each worker's trace
        back into the parent: every record gets a fresh id from this
        tracer's sequence (so ids stay unique within one capture), internal
        parent references are remapped through the same table, and records
        whose parent is ``None`` — or missing from the batch, e.g. dropped
        in the child — are re-rooted under ``parent_id``.  ``shift`` is
        added to every start/end so a worker's monotonic clock (which has
        an arbitrary origin in the child process) can be re-based onto the
        parent's timeline.  Records are appended in their given order, so a
        child buffer in end order keeps the children-before-parents
        invariant; returns the ``{old_id: new_id}`` map (callers use it to
        fix up cross-references such as ``FailureRecord.span_id``).
        """
        records = list(records)
        idmap: dict[int, int] = {}
        with self._lock:
            for r in records:
                idmap[r.span_id] = self._next_id
                self._next_id += 1
        remapped = [
            SpanRecord(
                span_id=idmap[r.span_id],
                parent_id=(
                    idmap.get(r.parent_id, parent_id)
                    if r.parent_id is not None
                    else parent_id
                ),
                name=r.name,
                start=r.start + shift,
                end=r.end + shift,
                attrs=r.attrs,
            )
            for r in records
        ]
        with self._lock:
            for record in remapped:
                self._records.append(record)
                if len(self._records) > self.max_spans:
                    self._records.popleft()
                    self.dropped += 1
        return idmap

    # ------------------------------------------------------------------ #
    def records(self) -> list[SpanRecord]:
        """Finished spans in end order (children before their parents)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def export_records(self) -> list[dict]:
        return [r.to_json() for r in self.records()]
