"""repro.traffic — persona-driven traffic simulation and load testing.

See ``docs/load_testing.md``.
"""

from .harness import (
    LoadHarness,
    TimedModel,
    build_scenario_service,
    build_two_stage_service,
)
from .personas import (
    ARCHETYPES,
    SCENARIO_MIXES,
    PersonaArchetype,
    PersonaMember,
    PersonaPopulation,
)
from .report import LoadReport, PersonaStats, reconcile
from .schedule import ScheduleProfile, TrafficRequest, TrafficSchedule

__all__ = [
    "ARCHETYPES",
    "SCENARIO_MIXES",
    "PersonaArchetype",
    "PersonaMember",
    "PersonaPopulation",
    "ScheduleProfile",
    "TrafficRequest",
    "TrafficSchedule",
    "TimedModel",
    "LoadHarness",
    "LoadReport",
    "PersonaStats",
    "reconcile",
    "build_scenario_service",
    "build_two_stage_service",
]
