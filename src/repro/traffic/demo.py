"""``python -m repro load-test`` — persona load runs and the CI smoke.

Default mode builds one scenario world (population → schedule → timed
service), replays it, and prints the rendered
:class:`~repro.traffic.report.LoadReport` plus the exact-reconciliation
verdict.  ``--smoke`` asserts, over a seed matrix, the invariants the
``load-smoke`` CI job relies on — all simulated-time, no wall-clock
timings:

* every scheduled request receives a typed outcome (none lost, none
  double-counted: the report reconciles exactly against telemetry);
* same seed → byte-identical ``LoadReport`` JSON and identical
  per-request outcome sequence across two runs, clean *and* with
  serving faults injected;
* clean runs answer >= 70% of requests, shed <= 40%, and shed at least
  one request (the flash crowd actually overloads the queue);
* a persona-driven online churn cell passes with its invariants intact
  (the traffic → online bridge stays wired).
"""

from __future__ import annotations

from repro.core.exceptions import ConfigError

from .harness import LoadHarness, build_scenario_service
from .personas import SCENARIO_MIXES, PersonaPopulation
from .report import LoadReport
from .schedule import ScheduleProfile, TrafficSchedule

__all__ = ["build_load_world", "run_load_test", "run_smoke"]

#: The standard smoke/demo window: two simulated seconds with a diurnal
#: cycle and one 3x flash crowd near the end.
DEFAULT_PROFILE = ScheduleProfile(
    horizon=2.0,
    day_period=1.0,
    flash_crowds=((0.8, 0.2, 3.0),),
    rate_scale=8.0,
)

SMOKE_FAULT_RATE = 0.05
MIN_RESPONSE_RATE = 0.7
MAX_SHED_RATE = 0.4


def build_load_world(
    scenario: str = "movie",
    seed: int = 0,
    profile: ScheduleProfile | None = None,
    fault_rate: float = 0.0,
    num_users: int = 120,
    trace: bool = False,
):
    """(harness, service, schedule) for one seeded scenario load run."""
    profile = profile if profile is not None else DEFAULT_PROFILE
    population = PersonaPopulation.from_scenario(
        scenario, num_users=num_users, seed=seed
    )
    schedule = TrafficSchedule(population, profile, seed=seed)
    service, clock, __ = build_scenario_service(
        scenario, seed=seed, num_requests=len(schedule),
        fault_rate=fault_rate, trace=trace,
    )
    harness = LoadHarness(
        service, schedule, clock, name=f"{scenario}-load", seed=seed
    )
    return harness, service, schedule


def run_load_test(
    scenario: str = "movie",
    seed: int = 0,
    horizon: float = 2.0,
    rate_scale: float = 8.0,
    fault_rate: float = 0.0,
) -> str:
    """One rendered load run (the default CLI mode)."""
    if scenario not in SCENARIO_MIXES:
        raise SystemExit(
            f"unknown scenario {scenario!r}; choose from "
            f"{sorted(SCENARIO_MIXES)}"
        )
    profile = ScheduleProfile(
        horizon=horizon,
        day_period=DEFAULT_PROFILE.day_period,
        flash_crowds=tuple(
            (start * horizon / DEFAULT_PROFILE.horizon, duration, mult)
            for start, duration, mult in DEFAULT_PROFILE.flash_crowds
        ),
        rate_scale=rate_scale,
    )
    harness, service, schedule = build_load_world(
        scenario, seed=seed, profile=profile, fault_rate=fault_rate,
        trace=True,
    )
    report = harness.run()
    tally = harness.reconcile()
    lines = [
        harness.schedule.population.describe(),
        schedule.describe(),
        "",
        report.render(),
        "",
        "telemetry reconciliation: exact ("
        + ", ".join(f"{k}={v}" for k, v in tally.items())
        + ")",
    ]
    return "\n".join(lines)


def _one_run(scenario: str, seed: int, fault_rate: float) -> LoadHarness:
    harness, __, ___ = build_load_world(
        scenario, seed=seed, fault_rate=fault_rate, trace=True
    )
    harness.run()
    return harness


def _check_invariants(harness: LoadHarness, seed: int, clean: bool) -> None:
    report = harness.report
    label = "clean" if clean else "faulted"
    if len(harness.outcome_trace) != len(harness.schedule):
        raise AssertionError(
            f"seed {seed} ({label}): {len(harness.outcome_trace)} outcomes "
            f"for {len(harness.schedule)} scheduled requests"
        )
    if report.requests != len(harness.schedule):
        raise AssertionError(
            f"seed {seed} ({label}): report covers {report.requests} of "
            f"{len(harness.schedule)} requests"
        )
    if report.rejected:
        raise AssertionError(
            f"seed {seed} ({label}): {report.rejected} requests rejected "
            "(schedule emitted invalid requests)"
        )
    harness.reconcile()
    if clean:
        if report.response_rate() < MIN_RESPONSE_RATE:
            raise AssertionError(
                f"seed {seed}: response rate {report.response_rate():.3f} "
                f"below {MIN_RESPONSE_RATE}"
            )
        if report.shed_rate() > MAX_SHED_RATE:
            raise AssertionError(
                f"seed {seed}: shed rate {report.shed_rate():.3f} "
                f"above {MAX_SHED_RATE}"
            )
        if report.shed == 0:
            raise AssertionError(
                f"seed {seed}: flash crowd shed nothing; harness is not "
                "exercising overload"
            )


def _online_bridge_cell(seed: int) -> str:
    import tempfile

    from repro.online.harness import run_churn_cell
    from repro.traffic.stream import persona_stream_factory

    factory = persona_stream_factory(scenario="news")
    with tempfile.TemporaryDirectory(prefix="load-smoke-online-") as tmp:
        cell = run_churn_cell(tmp, seed, "none", stream_factory=factory)
    if not cell.ok:
        raise AssertionError(
            "persona-driven churn cell failed: " + cell.describe()
        )
    return cell.describe()


def run_smoke(seeds: tuple[int, ...] = (0, 1, 2, 3, 4)) -> str:
    """Seed-matrix invariants + determinism + online bridge (CI mode)."""
    if not seeds:
        raise ConfigError("smoke needs at least one seed")
    lines = []
    for seed in seeds:
        for fault_rate, label in ((0.0, "clean"), (SMOKE_FAULT_RATE, "faulted")):
            runs = [_one_run("movie", seed, fault_rate) for __ in range(2)]
            if runs[0].report.to_json() != runs[1].report.to_json():
                raise AssertionError(
                    f"seed {seed} ({label}): LoadReport exports differ "
                    "between runs"
                )
            if runs[0].outcome_trace != runs[1].outcome_trace:
                raise AssertionError(
                    f"seed {seed} ({label}): per-request outcome sequences "
                    "differ between runs"
                )
            _check_invariants(runs[0], seed, clean=fault_rate == 0.0)
            report = runs[0].report
            lines.append(
                f"seed {seed} ({label}): {report.requests} requests, "
                f"rr={report.response_rate():.3f} "
                f"shed={report.shed_rate():.3f} "
                f"deg={report.degrade_rate():.3f} "
                f"p99={report.latency_p99 * 1e3:.3f}ms, reconciled, "
                "deterministic"
            )
    lines.append("online bridge: " + _online_bridge_cell(seeds[0]))
    return "load smoke OK\n" + "\n".join(lines)
