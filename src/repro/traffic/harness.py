"""The load harness: drive a service from a schedule, report, reconcile.

:class:`LoadHarness` replays a :class:`~repro.traffic.schedule.TrafficSchedule`
against a :class:`~repro.serving.service.RecommenderService` open-loop on
the shared :class:`~repro.core.clock.ManualClock`: the clock is advanced
to each request's scheduled arrival (never backwards — when the service
ran long, the next request is simply served late, which is how backlog
forms), and every response is tallied per persona into reservoir-mode
:class:`~repro.telemetry.metrics.Histogram` s so quantiles stay unbiased
over arbitrarily long runs.

Service time is simulated by :class:`TimedModel`, a scoring wrapper that
advances the shared clock by a seeded lognormal sample per call — the
same injected-sleep trick the fault injector uses.  That one hook is
what makes deadlines, admission drain, breaker recovery, and the latency
distribution all behave realistically at thousands of requests per
*simulated* second while the wall clock only pays for the scoring math.

Builders at the bottom construct the two standard targets: a fitted
Table-4 scenario ladder (``build_scenario_service``) and a 10^5-item
two-stage ANN service (``build_two_stage_service``, the
``BENCH_serving.json`` configuration).  Both compose with a
:class:`~repro.runtime.faults.FaultPlan` for load+chaos runs.
"""

from __future__ import annotations

from math import exp

import numpy as np

from repro.core.clock import ManualClock
from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.interactions import InteractionMatrix
from repro.core.rng import ensure_rng
from repro.runtime.faults import SERVING_FAULT_KINDS, FaultInjector, FaultPlan
from repro.serving.admission import AdmissionQueue
from repro.serving.service import RecommenderService, ServeRequest
from repro.telemetry.metrics import MetricRegistry

from .report import LoadReport, PersonaStats, reconcile
from .schedule import TrafficSchedule

__all__ = [
    "TimedModel",
    "LoadHarness",
    "build_scenario_service",
    "build_two_stage_service",
]

#: Latency histogram bounds fine enough for sub-millisecond service times.
LATENCY_BOUNDS = tuple(
    base * scale
    for scale in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1)
    for base in (1.0, 2.5, 5.0)
) + (1.0,)


class TimedModel:
    """Scoring wrapper that charges simulated service time per call.

    Each ``score_all``/``score_candidates`` call advances the shared
    clock by ``mean * exp(sigma * N(0, 1))`` seconds from a dedicated
    seeded RNG — a lognormal service time with median ``mean``.  The
    draw order is the call order, which the schedule fixes, so latencies
    are deterministic per seed.  Everything else (fit, retrieval
    protocol, ``generation``, ``supports_candidates``) delegates to the
    wrapped model, so a :class:`TimedModel` can sit on any rung,
    including candidate rungs.
    """

    def __init__(
        self,
        inner,
        clock: ManualClock,
        mean: float = 0.0002,
        sigma: float = 0.35,
        seed: int = 0,
    ) -> None:
        if mean <= 0 or sigma < 0:
            raise ConfigError("TimedModel needs mean > 0 and sigma >= 0")
        self.inner = inner
        self.clock = clock
        self.mean = float(mean)
        self.sigma = float(sigma)
        self._rng = ensure_rng(seed)

    def _charge(self) -> None:
        self.clock.advance(
            self.mean * exp(self.sigma * float(self._rng.standard_normal()))
        )

    # ------------------------------------------------------------------ #
    @property
    def supports_candidates(self) -> bool:
        return bool(getattr(self.inner, "supports_candidates", False))

    def score_all(self, user_id: int):
        self._charge()
        return self.inner.score_all(user_id)

    def score_candidates(self, user_id: int, k: int | None = None):
        self._charge()
        return self.inner.score_candidates(user_id, k)

    def fit(self, dataset):
        self.inner.fit(dataset)
        return self

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


class LoadHarness:
    """Replay one schedule against one service; produce a LoadReport.

    The harness keeps its *own* :class:`MetricRegistry` (reservoir-mode
    latency histograms, per-persona outcome counters) precisely so
    :func:`~repro.traffic.report.reconcile` has two independently
    written sets of books to cross-check.
    """

    def __init__(
        self,
        service: RecommenderService,
        schedule: TrafficSchedule,
        clock: ManualClock,
        name: str = "load",
        seed: int = 0,
    ) -> None:
        self.service = service
        self.schedule = schedule
        self.clock = clock
        self.name = name
        self.seed = int(seed)
        self.registry = MetricRegistry()
        #: ``persona:status`` per request, in serve order (determinism
        #: tests compare these across runs).
        self.outcome_trace: list[str] = []
        self.report: LoadReport | None = None

    # ------------------------------------------------------------------ #
    def _persona_hist(self, persona: str):
        return self.registry.histogram(
            "traffic.latency_seconds",
            bounds=LATENCY_BOUNDS,
            reservoir=True,
            reservoir_seed=self.seed,
            persona=persona,
        )

    def run(self) -> LoadReport:
        """Serve every scheduled request; returns (and stores) the report."""
        service, clock = self.service, self.clock
        start = clock()
        aggregate = self.registry.histogram(
            "traffic.latency_seconds",
            bounds=LATENCY_BOUNDS,
            reservoir=True,
            reservoir_seed=self.seed,
            persona="_all",
        )
        for request in self.schedule:
            if request.at > clock():
                clock.advance(request.at - clock())
            response = service.serve(
                ServeRequest(
                    user_id=request.user_id,
                    k=request.k,
                    exclude_seen=request.exclude_seen,
                )
            )
            self.registry.counter(
                "traffic.requests", persona=request.persona
            ).inc()
            self.registry.counter(
                "traffic.status", persona=request.persona,
                status=response.status,
            ).inc()
            self._persona_hist(request.persona).observe(response.latency)
            aggregate.observe(response.latency)
            self.outcome_trace.append(f"{request.persona}:{response.status}")
        elapsed = max(clock() - start, self.schedule.horizon - start)
        self.report = self._build_report(elapsed)
        return self.report

    # ------------------------------------------------------------------ #
    def _persona_stats(self) -> tuple[PersonaStats, ...]:
        personas = sorted(
            {r.persona for r in self.schedule.materialize()}
        )
        out = []
        for persona in personas:
            counts = {
                s: self.registry.counter(
                    "traffic.status", persona=persona, status=s
                ).value
                for s in ("ok", "degraded", "shed", "rejected")
            }
            hist = self._persona_hist(persona)
            out.append(
                PersonaStats(
                    persona=persona,
                    requests=int(
                        self.registry.counter(
                            "traffic.requests", persona=persona
                        ).value
                    ),
                    ok=int(counts["ok"]),
                    degraded=int(counts["degraded"]),
                    shed=int(counts["shed"]),
                    rejected=int(counts["rejected"]),
                    latency_p50=float(hist.quantile(50.0)),
                    latency_p99=float(hist.quantile(99.0)),
                    latency_mean=float(hist.mean),
                )
            )
        return tuple(out)

    def _build_report(self, elapsed: float) -> LoadReport:
        personas = self._persona_stats()
        aggregate = self._persona_hist("_all")
        trips = sum(
            1 for t in self.service.breaker_transitions() if "-> open" in t
        )
        injector = self.service.faults
        return LoadReport(
            name=self.name,
            seed=self.seed,
            requests=sum(p.requests for p in personas),
            sim_seconds=float(elapsed),
            throughput_rps=(
                sum(p.requests for p in personas) / elapsed if elapsed else 0.0
            ),
            ok=sum(p.ok for p in personas),
            degraded=sum(p.degraded for p in personas),
            shed=sum(p.shed for p in personas),
            rejected=sum(p.rejected for p in personas),
            latency_p50=float(aggregate.quantile(50.0)),
            latency_p99=float(aggregate.quantile(99.0)),
            latency_mean=float(aggregate.mean),
            breaker_trips=trips,
            faults_injected=len(injector.injected) if injector else 0,
            personas=personas,
        )

    def reconcile(self) -> dict[str, int]:
        """Cross-check the report against the service's telemetry."""
        if self.report is None:
            raise ConfigError("run() the harness before reconciling")
        return reconcile(self.report, self.service)


# ---------------------------------------------------------------------- #
# service builders
# ---------------------------------------------------------------------- #
def build_scenario_service(
    scenario: str = "movie",
    seed: int = 0,
    num_requests: int = 2000,
    fault_rate: float = 0.0,
    deadline: float = 0.02,
    capacity: int = 48,
    drain_rate: float = 3000.0,
    service_time: float = 0.0002,
    trace: bool = False,
) -> tuple[RecommenderService, ManualClock, FaultInjector | None]:
    """A fitted Table-4 scenario ladder behind a timed serving stack.

    ItemKNN primary + MostPopular fallback (+ implicit static rung),
    both wrapped in :class:`TimedModel`; the admission queue and
    optional serving-fault plan share the returned clock.
    """
    from repro.data import SCENARIO_SCHEMAS
    from repro.data.synthetic import generate_dataset
    from repro.models.baselines import ItemKNN, MostPopular
    from repro.telemetry import Telemetry

    if scenario not in SCENARIO_SCHEMAS:
        raise ConfigError(
            f"unknown scenario {scenario!r}; choose from "
            f"{sorted(SCENARIO_SCHEMAS)}"
        )
    dataset = generate_dataset(SCENARIO_SCHEMAS[scenario], seed=seed)
    clock = ManualClock()
    primary = TimedModel(
        ItemKNN(num_neighbors=10).fit(dataset), clock,
        mean=service_time, seed=seed,
    )
    fallback = TimedModel(
        MostPopular().fit(dataset), clock,
        mean=service_time / 2, seed=seed + 1,
    )
    injector = None
    if fault_rate > 0:
        plan = FaultPlan.random(
            num_requests, rate=fault_rate, kinds=SERVING_FAULT_KINDS,
            seed=seed, seconds=0.05,
        )
        injector = FaultInjector(plan, sleep=clock.advance)
    telemetry = Telemetry(clock=clock) if trace else None
    service = RecommenderService(
        dataset,
        primary=("ItemKNN", primary),
        fallbacks=[("MostPopular", fallback)],
        default_deadline=deadline,
        breaker_config={
            "failure_threshold": 5,
            "window": 20,
            "recovery_time": 0.25,
            "half_open_probes": 2,
        },
        admission=AdmissionQueue(
            capacity=capacity, drain_rate=drain_rate, clock=clock
        ),
        faults=injector,
        clock=clock,
        telemetry=telemetry,
    )
    return service, clock, injector


def build_two_stage_service(
    num_items: int = 100_000,
    num_users: int = 2048,
    dim: int = 32,
    seed: int = 0,
    num_requests: int = 10_000,
    fault_rate: float = 0.0,
    deadline: float = 0.02,
    capacity: int = 64,
    drain_rate: float = 4000.0,
    service_time: float = 0.0002,
    trace: bool = False,
) -> tuple[RecommenderService, ManualClock, FaultInjector | None]:
    """A 10^5-item ANN-fronted service (the serving-bench configuration).

    Primary rung: :class:`TwoStageRecommender` (IVF candidates + exact
    rerank) over a clustered synthetic catalog; fallback: the same
    embeddings scored exactly.  Both are :class:`TimedModel`-wrapped on
    the shared clock.
    """
    from repro.retrieval import IvfIndex
    from repro.retrieval.two_stage import (
        ArrayEmbeddingRecommender,
        TwoStageRecommender,
    )
    from repro.telemetry import Telemetry

    rng = np.random.default_rng(seed)
    num_centers = 256
    centers = rng.standard_normal((num_centers, dim))
    items = centers[rng.integers(num_centers, size=num_items)]
    items = items + 0.25 * rng.standard_normal((num_items, dim))
    users = centers[rng.integers(num_centers, size=num_users)]
    users = users + 0.25 * rng.standard_normal((num_users, dim))

    # A sparse seen-history so exclude_seen has something to exclude.
    hist_users = np.repeat(np.arange(num_users), 3)
    hist_items = rng.integers(num_items, size=hist_users.size)
    dataset = Dataset(
        name=f"two-stage-catalog-s{seed}",
        interactions=InteractionMatrix(
            hist_users.astype(np.int64), hist_items.astype(np.int64),
            num_users, num_items,
        ),
    )

    clock = ManualClock()
    base = ArrayEmbeddingRecommender(users, items).fit(dataset)
    two_stage = TwoStageRecommender(
        base, IvfIndex(seed=seed), k_candidates=128
    ).fit(dataset)
    two_stage.sync_index()
    primary = TimedModel(two_stage, clock, mean=service_time, seed=seed)
    fallback = TimedModel(base, clock, mean=service_time * 4, seed=seed + 1)

    injector = None
    if fault_rate > 0:
        plan = FaultPlan.random(
            num_requests, rate=fault_rate, kinds=SERVING_FAULT_KINDS,
            seed=seed, seconds=0.05,
        )
        injector = FaultInjector(plan, sleep=clock.advance)
    telemetry = Telemetry(clock=clock) if trace else None
    service = RecommenderService(
        dataset,
        primary=("two_stage", primary),
        fallbacks=[("exact", fallback)],
        default_deadline=deadline,
        breaker_config={
            "failure_threshold": 5,
            "window": 20,
            "recovery_time": 0.25,
            "half_open_probes": 2,
        },
        admission=AdmissionQueue(
            capacity=capacity, drain_rate=drain_rate, clock=clock
        ),
        faults=injector,
        clock=clock,
        telemetry=telemetry,
    )
    return service, clock, injector
