"""Persona archetypes and seeded populations behind the traffic simulator.

The survey's Table-4 scenarios (movie, book, music, product, POI, news,
social — :mod:`repro.data.scenarios`) describe *who* a KG recommender
serves; this module describes *how* those users hit it.  Five archetypes
cover the load shapes real deployments report:

* ``power_user`` — a Pareto-tailed activity multiplier per member, so a
  few members generate most of the traffic (power-law user activity);
* ``diurnal_browser`` — a steady baseline modulated by a day cycle
  (see :class:`~repro.traffic.schedule.ScheduleProfile.day_period`);
* ``bursty_sessioner`` — sparse arrivals that each expand into a
  session burst of back-to-back requests;
* ``cold_start_newcomer`` — members that are *new users*: ids sit past
  the warm population, which is what exercises cold-start serving and
  lets :class:`~repro.traffic.stream.PersonaInteractionStream` introduce
  them into the online loop;
* ``crawler`` — high-rate, large-burst, ``exclude_seen=False`` floods
  (scrapers and abuse traffic that should be shed, not served politely).

A :class:`PersonaPopulation` samples concrete members from a scenario's
archetype mix with one seeded RNG: member counts come from a largest-
remainder apportionment of the mix weights (deterministic), per-member
activity multipliers and diurnal phases from the population RNG, and
user ids are assigned so newcomer members occupy the top of the id range
(the cold slice) while everyone else lands in the warm prefix.  The same
``(scenario, num_users, seed)`` always yields the same population.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.exceptions import ConfigError
from repro.core.rng import ensure_rng

__all__ = [
    "PersonaArchetype",
    "PersonaMember",
    "PersonaPopulation",
    "ARCHETYPES",
    "SCENARIO_MIXES",
]


@dataclass(frozen=True)
class PersonaArchetype:
    """One behavioral archetype: an arrival process + request mixture.

    Parameters
    ----------
    name:
        Archetype label (stable; lands in reports and traces).
    base_rate:
        Arrival events per simulated second per member, before the
        activity multiplier and schedule-level modulation.
    rate_alpha:
        Pareto tail index for the per-member activity multiplier
        ``1 + Pareto(alpha)``; ``0`` disables it (multiplier 1.0).
        Smaller alpha = heavier tail = more extreme power users.
    diurnal_amplitude:
        Modulation depth in ``[0, 1]`` against the schedule's day cycle;
        0 means the archetype ignores the time of day.
    burst_size:
        Inclusive ``(lo, hi)`` range of requests emitted per arrival
        event (a session burst).
    within_gap:
        Simulated seconds between consecutive requests inside one burst.
    k_choices:
        The request-k mixture; each request draws uniformly from these.
    exclude_seen:
        Whether the archetype's requests ask for seen-item exclusion
        (crawlers don't — they re-fetch everything).
    newcomer:
        Members are cold-start users outside the warm id prefix.
    """

    name: str
    base_rate: float
    rate_alpha: float = 0.0
    diurnal_amplitude: float = 0.0
    burst_size: tuple[int, int] = (1, 1)
    within_gap: float = 0.0
    k_choices: tuple[int, ...] = (10,)
    exclude_seen: bool = True
    newcomer: bool = False

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ConfigError(f"{self.name}: base_rate must be positive")
        if self.rate_alpha < 0:
            raise ConfigError(f"{self.name}: rate_alpha must be >= 0")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ConfigError(
                f"{self.name}: diurnal_amplitude must lie in [0, 1]"
            )
        lo, hi = self.burst_size
        if lo < 1 or hi < lo:
            raise ConfigError(f"{self.name}: burst_size must satisfy 1 <= lo <= hi")
        if self.within_gap < 0:
            raise ConfigError(f"{self.name}: within_gap must be >= 0")
        if not self.k_choices or any(k < 1 for k in self.k_choices):
            raise ConfigError(f"{self.name}: k_choices must be positive ints")


#: The five stock archetypes (rates are per member, per simulated second;
#: schedules scale them with ``rate_scale`` to hit a target throughput).
ARCHETYPES: dict[str, PersonaArchetype] = {
    a.name: a
    for a in (
        PersonaArchetype(
            name="power_user",
            base_rate=2.0,
            rate_alpha=1.2,
            diurnal_amplitude=0.2,
            k_choices=(10, 20),
        ),
        PersonaArchetype(
            name="diurnal_browser",
            base_rate=0.8,
            diurnal_amplitude=0.9,
            k_choices=(10,),
        ),
        PersonaArchetype(
            name="bursty_sessioner",
            base_rate=0.35,
            burst_size=(3, 8),
            within_gap=0.0005,
            k_choices=(5, 10),
        ),
        PersonaArchetype(
            name="cold_start_newcomer",
            base_rate=0.5,
            diurnal_amplitude=0.3,
            k_choices=(10,),
            newcomer=True,
        ),
        PersonaArchetype(
            name="crawler",
            base_rate=6.0,
            burst_size=(4, 12),
            within_gap=0.0,
            k_choices=(20,),
            exclude_seen=False,
        ),
    )
}

#: Archetype weight per Table-4 scenario: news/social skew diurnal and
#: bursty (feeds), product/POI carry crawler floods (price scrapers),
#: movie/book/music are the balanced catalog-browsing shapes.
SCENARIO_MIXES: dict[str, dict[str, float]] = {
    "movie": {
        "power_user": 0.25, "diurnal_browser": 0.35,
        "bursty_sessioner": 0.2, "cold_start_newcomer": 0.15, "crawler": 0.05,
    },
    "book": {
        "power_user": 0.2, "diurnal_browser": 0.4,
        "bursty_sessioner": 0.2, "cold_start_newcomer": 0.15, "crawler": 0.05,
    },
    "music": {
        "power_user": 0.35, "diurnal_browser": 0.25,
        "bursty_sessioner": 0.25, "cold_start_newcomer": 0.1, "crawler": 0.05,
    },
    "product": {
        "power_user": 0.2, "diurnal_browser": 0.3,
        "bursty_sessioner": 0.15, "cold_start_newcomer": 0.2, "crawler": 0.15,
    },
    "poi": {
        "power_user": 0.15, "diurnal_browser": 0.45,
        "bursty_sessioner": 0.15, "cold_start_newcomer": 0.15, "crawler": 0.1,
    },
    "news": {
        "power_user": 0.15, "diurnal_browser": 0.5,
        "bursty_sessioner": 0.25, "cold_start_newcomer": 0.1,
    },
    "social": {
        "power_user": 0.3, "diurnal_browser": 0.2,
        "bursty_sessioner": 0.3, "cold_start_newcomer": 0.1, "crawler": 0.1,
    },
}


@dataclass(frozen=True)
class PersonaMember:
    """One concrete simulated user: an archetype instance with its dials."""

    persona: str
    member: int  # population-global index; also the schedule's RNG key
    user_id: int
    rate: float  # arrival events / simulated second, multiplier applied
    phase: float  # diurnal phase offset in [0, 1)
    archetype: PersonaArchetype


def _apportion(weights: dict[str, float], total: int) -> dict[str, int]:
    """Largest-remainder apportionment of ``total`` members (deterministic).

    Every positive-weight archetype gets at least one member when
    ``total`` allows, so small populations still exercise every shape.
    """
    if total < 1:
        raise ConfigError("population needs at least one member")
    norm = sum(weights.values())
    if norm <= 0:
        raise ConfigError("archetype mix weights must sum to > 0")
    quotas = {name: total * w / norm for name, w in weights.items() if w > 0}
    counts = {name: int(q) for name, q in quotas.items()}
    if len(quotas) <= total:
        for name in counts:
            counts[name] = max(1, counts[name])
    while sum(counts.values()) > total:
        # Trim the most over-represented archetype (ties break by name).
        name = max(
            (n for n in counts if counts[n] > 1),
            key=lambda n: (counts[n] - quotas[n], n),
        )
        counts[name] -= 1
    remainders = sorted(
        quotas, key=lambda n: (-(quotas[n] - counts[n]), n)
    )
    i = 0
    while sum(counts.values()) < total:
        counts[remainders[i % len(remainders)]] += 1
        i += 1
    return counts


class PersonaPopulation:
    """A seeded, scenario-shaped set of :class:`PersonaMember` s.

    ``num_users`` is the id space the members address (the served
    catalog's user count); newcomer members take the top ids so the warm
    prefix ``[0, warm_users)`` matches what a bootstrap dataset covers.
    """

    def __init__(
        self,
        scenario: str,
        members: tuple[PersonaMember, ...],
        num_users: int,
        warm_users: int,
        seed: int,
    ) -> None:
        if not members:
            raise ConfigError("population has no members")
        self.scenario = scenario
        self.members = members
        self.num_users = int(num_users)
        self.warm_users = int(warm_users)
        self.seed = int(seed)

    @classmethod
    def from_scenario(
        cls,
        scenario: str,
        num_users: int,
        seed: int = 0,
        num_members: int | None = None,
        mix: dict[str, float] | None = None,
        archetypes: dict[str, PersonaArchetype] | None = None,
    ) -> "PersonaPopulation":
        """Sample a population for one Table-4 scenario.

        ``num_members`` defaults to ``min(num_users, 48)`` — enough to
        show every archetype without making the merge dominate runtime.
        """
        if mix is None:
            if scenario not in SCENARIO_MIXES:
                raise ConfigError(
                    f"unknown scenario {scenario!r}; choose from "
                    f"{sorted(SCENARIO_MIXES)} or pass an explicit mix"
                )
            mix = SCENARIO_MIXES[scenario]
        archetypes = archetypes if archetypes is not None else ARCHETYPES
        unknown = set(mix) - set(archetypes)
        if unknown:
            raise ConfigError(f"mix names unknown archetypes {sorted(unknown)}")
        if num_users < 2:
            raise ConfigError("population needs num_users >= 2")
        total = num_members if num_members is not None else min(num_users, 48)
        total = min(total, num_users)
        counts = _apportion(mix, total)
        newcomer_count = sum(
            c for name, c in counts.items() if archetypes[name].newcomer
        )
        warm_users = num_users - newcomer_count
        if warm_users < 1:
            raise ConfigError(
                f"{newcomer_count} newcomer members leave no warm users "
                f"in a {num_users}-user id space"
            )

        rng = ensure_rng(seed)
        members: list[PersonaMember] = []
        next_newcomer = warm_users
        # Warm ids without replacement while they last, so distinct
        # members are distinct users whenever the id space allows.
        warm_pool = rng.permutation(warm_users)
        warm_cursor = 0
        for name in sorted(counts):
            arche = archetypes[name]
            for __ in range(counts[name]):
                if arche.newcomer:
                    user_id = next_newcomer
                    next_newcomer += 1
                elif warm_cursor < warm_pool.size:
                    user_id = int(warm_pool[warm_cursor])
                    warm_cursor += 1
                else:
                    user_id = int(rng.integers(warm_users))
                mult = (
                    1.0 + float(rng.pareto(arche.rate_alpha))
                    if arche.rate_alpha > 0
                    else 1.0
                )
                members.append(
                    PersonaMember(
                        persona=name,
                        member=len(members),
                        user_id=user_id,
                        rate=arche.base_rate * mult,
                        phase=float(rng.random()),
                        archetype=arche,
                    )
                )
        return cls(
            scenario=scenario,
            members=tuple(members),
            num_users=num_users,
            warm_users=warm_users,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    @property
    def personas(self) -> tuple[str, ...]:
        """Archetype names present, sorted (report ordering)."""
        return tuple(sorted({m.persona for m in self.members}))

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for m in self.members:
            out[m.persona] = out.get(m.persona, 0) + 1
        return dict(sorted(out.items()))

    def scaled(self, factor: float) -> "PersonaPopulation":
        """The same members with every arrival rate multiplied.

        The cheap way to push one population to a target requests/second
        without resampling multipliers or reassigning user ids.
        """
        if factor <= 0:
            raise ConfigError("rate factor must be positive")
        members = tuple(
            replace(m, rate=m.rate * float(factor)) for m in self.members
        )
        return PersonaPopulation(
            self.scenario, members, self.num_users, self.warm_users, self.seed
        )

    def describe(self) -> str:
        counts = self.counts()
        parts = ", ".join(f"{name}={n}" for name, n in counts.items())
        return (
            f"{self.scenario} population: {len(self.members)} members "
            f"over {self.num_users} users ({self.warm_users} warm) — {parts}"
        )
