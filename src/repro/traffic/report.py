"""Load-test results: per-persona and aggregate, reconciled, exportable.

A :class:`LoadReport` is what a :class:`~repro.traffic.harness.LoadHarness`
run produces: throughput, nearest-rank latency quantiles, and outcome
rates, both aggregate and per persona.  Two properties matter more than
the numbers themselves:

* **deterministic export** — :meth:`LoadReport.to_json` is
  ``json.dumps(sort_keys=True)`` over values derived entirely from the
  :class:`~repro.core.clock.ManualClock` and seeded RNGs, so the same
  seed yields a byte-identical file (the determinism tests and the
  ``BENCH_serving.json`` trajectory both rely on it);
* **exact reconciliation** — :func:`reconcile` cross-checks every
  harness tally against the service's own telemetry counters
  (``serve.status::*``, ``serve.requests``, latency observation counts).
  The two are written by different code on different sides of the
  request path; agreement to the unit proves neither lost nor
  double-counted a request.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.core.exceptions import ConfigError

__all__ = ["PersonaStats", "LoadReport", "reconcile", "check_bench_floor"]

STATUSES = ("ok", "degraded", "shed", "rejected")


@dataclass(frozen=True)
class PersonaStats:
    """Outcome tallies and latency quantiles for one persona."""

    persona: str
    requests: int
    ok: int
    degraded: int
    shed: int
    rejected: int
    latency_p50: float
    latency_p99: float
    latency_mean: float

    @property
    def answered(self) -> int:
        return self.ok + self.degraded

    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def degrade_rate(self) -> float:
        return self.degraded / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class LoadReport:
    """One load run, aggregate + per persona (all rates in [0, 1])."""

    name: str
    seed: int
    requests: int
    sim_seconds: float
    throughput_rps: float
    ok: int
    degraded: int
    shed: int
    rejected: int
    latency_p50: float
    latency_p99: float
    latency_mean: float
    breaker_trips: int
    faults_injected: int
    personas: tuple[PersonaStats, ...]

    # -------------------------------------------------------------- #
    @property
    def answered(self) -> int:
        return self.ok + self.degraded

    def response_rate(self) -> float:
        return self.answered / self.requests if self.requests else 0.0

    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def degrade_rate(self) -> float:
        return self.degraded / self.requests if self.requests else 0.0

    # -------------------------------------------------------------- #
    def to_dict(self) -> dict:
        out = asdict(self)
        out["personas"] = [asdict(p) for p in self.personas]
        out["response_rate"] = self.response_rate()
        out["shed_rate"] = self.shed_rate()
        out["degrade_rate"] = self.degrade_rate()
        return out

    def to_json(self) -> str:
        """Deterministic (sorted-key) JSON export."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "LoadReport":
        personas = tuple(
            PersonaStats(**p) for p in data.get("personas", ())
        )
        fields = {
            k: data[k]
            for k in (
                "name", "seed", "requests", "sim_seconds", "throughput_rps",
                "ok", "degraded", "shed", "rejected", "latency_p50",
                "latency_p99", "latency_mean", "breaker_trips",
                "faults_injected",
            )
        }
        return cls(personas=personas, **fields)

    # -------------------------------------------------------------- #
    def render(self) -> str:
        """Human-readable report (the ``load-test`` CLI output)."""
        lines = [
            f"load report: {self.name} (seed {self.seed})",
            "=" * max(29, len(self.name) + 25),
            f"requests        {self.requests} over {self.sim_seconds:.3f} "
            f"simulated seconds",
            f"throughput      {self.throughput_rps:.0f} req/s (simulated)",
            f"  ok            {self.ok}",
            f"  degraded      {self.degraded}",
            f"  shed          {self.shed}",
            f"  rejected      {self.rejected}",
            f"response rate   {self.response_rate():.4f}",
            f"shed rate       {self.shed_rate():.4f}",
            f"degrade rate    {self.degrade_rate():.4f}",
            f"latency p50/p99 {self.latency_p50 * 1e3:.3f}ms / "
            f"{self.latency_p99 * 1e3:.3f}ms (mean "
            f"{self.latency_mean * 1e3:.3f}ms)",
            f"breaker trips   {self.breaker_trips}",
            f"faults injected {self.faults_injected}",
            "",
            f"{'persona':<20s} {'req':>6s} {'ok':>6s} {'degr':>5s} "
            f"{'shed':>5s} {'rej':>4s} {'p50ms':>8s} {'p99ms':>8s}",
        ]
        for p in self.personas:
            lines.append(
                f"{p.persona:<20s} {p.requests:>6d} {p.ok:>6d} "
                f"{p.degraded:>5d} {p.shed:>5d} {p.rejected:>4d} "
                f"{p.latency_p50 * 1e3:>8.3f} {p.latency_p99 * 1e3:>8.3f}"
            )
        return "\n".join(lines)


def reconcile(report: LoadReport, service) -> dict[str, int]:
    """Assert the report's tallies equal the service's telemetry counters.

    Raises :class:`AssertionError` on the first mismatch; returns the
    reconciled ``{status: count}`` tally on success.  Checks, exactly:

    * per-status totals vs ``serve.status::<s>`` counters,
    * per-persona sums vs the aggregate,
    * total requests vs ``serve.requests``,
    * latency observations vs the service latency histogram count.
    """
    counters = service.metrics.counters
    tally: dict[str, int] = {}
    for status in STATUSES:
        mine = getattr(report, status)
        per_persona = sum(getattr(p, status) for p in report.personas)
        if per_persona != mine:
            raise AssertionError(
                f"persona {status} tallies sum to {per_persona}, "
                f"aggregate says {mine}"
            )
        theirs = counters[f"status::{status}"]
        if mine != theirs:
            raise AssertionError(
                f"report counted {mine} {status} responses, service "
                f"telemetry counted {theirs}"
            )
        tally[status] = mine
    total = sum(tally.values())
    if total != report.requests:
        raise AssertionError(
            f"{total} statused responses for {report.requests} requests"
        )
    if total != counters["requests"]:
        raise AssertionError(
            f"report saw {total} requests, service counted "
            f"{counters['requests']}"
        )
    observed = service.metrics.num_observations
    if observed != report.requests:
        raise AssertionError(
            f"service observed {observed} latencies for "
            f"{report.requests} requests"
        )
    return tally


def check_bench_floor(report: LoadReport, min_rps: float) -> None:
    """Raise unless the run sustained ``min_rps`` simulated throughput."""
    if report.throughput_rps < min_rps:
        raise ConfigError(
            f"sustained {report.throughput_rps:.0f} req/s simulated, "
            f"needed >= {min_rps:.0f}"
        )
