"""Deterministic open-loop request schedules composed from personas.

A :class:`TrafficSchedule` turns a
:class:`~repro.traffic.personas.PersonaPopulation` plus a
:class:`ScheduleProfile` (horizon, diurnal day length, ramp, flash
crowds) into a sorted stream of :class:`TrafficRequest` s — *open loop*:
arrival times are fixed up front and never react to how fast the service
answers, which is what makes overload visible instead of self-throttling
(closed-loop clients politely slow down exactly when you need to see the
shed rate).

Determinism: each member's arrivals come from its own
``np.random.default_rng((seed, epoch, member))`` stream via Ogata
thinning of the member's intensity function, so the composed schedule is
reproducible per seed, is independent of member iteration order, and can
be extended window-by-window (``epoch``) without replaying earlier
windows — :class:`~repro.traffic.stream.PersonaInteractionStream` relies
on that to feed the online loop indefinitely.

:meth:`TrafficSchedule.bursty` is the legacy ``serve-demo`` replay shape
(single pseudo-member, 70/30 tight/loose gap mixture) re-expressed as a
schedule; it consumes its RNG in exactly the order the old private
generator did, so rebasing the demo kept every seeded outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sin, tau

import numpy as np

from repro.core.exceptions import ConfigError
from repro.core.rng import ensure_rng

from .personas import PersonaMember, PersonaPopulation

__all__ = ["TrafficRequest", "ScheduleProfile", "TrafficSchedule"]

#: Legacy serve-demo gap mixture (see ``repro.serving.demo``).
LEGACY_SERVICE_TIME = 0.004
LEGACY_BURST_GAP = 0.02


@dataclass(frozen=True)
class TrafficRequest:
    """One scheduled request: who asks what, when (simulated seconds)."""

    at: float
    persona: str
    member: int
    user_id: int
    k: int = 10
    exclude_seen: bool = True

    def trace(self) -> str:
        """Canonical one-line form; determinism tests compare these."""
        return (
            f"t={self.at:.6f}|{self.persona}|m={self.member}|"
            f"u={self.user_id}|k={self.k}|x={int(self.exclude_seen)}"
        )


@dataclass(frozen=True)
class ScheduleProfile:
    """Shape of one load window.

    Parameters
    ----------
    horizon:
        Window length in simulated seconds.
    day_period:
        Length of one "day" for diurnal modulation; 0 disables it
        (members' ``diurnal_amplitude`` is then ignored).
    ramp:
        ``(start, end)`` linear rate multiplier across the window —
        ``(0.1, 1.0)`` is a ramp-up test, ``(1.0, 1.0)`` steady state.
    flash_crowds:
        ``(start, duration, multiplier)`` triples; within each interval
        every member's rate is multiplied (a thundering herd).
    rate_scale:
        Global multiplier on top of member rates (the throughput dial).
    """

    horizon: float = 4.0
    day_period: float = 0.0
    ramp: tuple[float, float] = (1.0, 1.0)
    flash_crowds: tuple[tuple[float, float, float], ...] = ()
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigError("horizon must be positive")
        if self.day_period < 0:
            raise ConfigError("day_period must be >= 0")
        if min(self.ramp) < 0 or max(self.ramp) <= 0:
            raise ConfigError("ramp multipliers must be >= 0, not both 0")
        for start, duration, mult in self.flash_crowds:
            if start < 0 or duration <= 0 or mult <= 0:
                raise ConfigError(
                    f"bad flash crowd ({start}, {duration}, {mult})"
                )
        if self.rate_scale <= 0:
            raise ConfigError("rate_scale must be positive")

    # -------------------------------------------------------------- #
    def modulation(self, t: float, member: PersonaMember) -> float:
        """Rate multiplier at time ``t`` for ``member`` (>= 0)."""
        frac = min(max(t / self.horizon, 0.0), 1.0)
        mult = self.ramp[0] + (self.ramp[1] - self.ramp[0]) * frac
        for start, duration, crowd in self.flash_crowds:
            if start <= t < start + duration:
                mult *= crowd
        amp = member.archetype.diurnal_amplitude
        if self.day_period > 0 and amp > 0:
            phase = t / self.day_period + member.phase
            mult *= max(0.0, 1.0 + amp * sin(tau * phase))
        return mult * self.rate_scale

    def peak_modulation(self, member: PersonaMember) -> float:
        """An upper bound on :meth:`modulation` (the thinning envelope)."""
        mult = max(self.ramp)
        for __, ___, crowd in self.flash_crowds:
            mult *= max(1.0, crowd)
        amp = member.archetype.diurnal_amplitude
        if self.day_period > 0 and amp > 0:
            mult *= 1.0 + amp
        return mult * self.rate_scale


class TrafficSchedule:
    """A materialized, sorted, reproducible open-loop request stream."""

    def __init__(
        self,
        population: PersonaPopulation,
        profile: ScheduleProfile | None = None,
        seed: int | None = None,
        epoch: int = 0,
        start: float = 0.0,
    ) -> None:
        self.population = population
        self.profile = profile if profile is not None else ScheduleProfile()
        self.seed = int(seed) if seed is not None else population.seed
        self.epoch = int(epoch)
        self.start = float(start)
        self.horizon = self.start + self.profile.horizon
        self._requests: list[TrafficRequest] | None = None
        self._gaps: list[float] | None = None

    # -------------------------------------------------------------- #
    @classmethod
    def bursty(
        cls, num_users: int, num_requests: int, seed: int = 0
    ) -> "TrafficSchedule":
        """The legacy ``serve-demo`` replay stream as a schedule.

        RNG consumption matches the old private generator draw-for-draw
        (per event: one user draw, then one gap draw), so the event
        sequence — and therefore every downstream seeded outcome — is
        identical to what ``run_replay`` produced before the rebase.
        The per-event gaps are stored exactly so :meth:`gaps` returns
        the drawn values, not timestamp differences.
        """
        if num_users < 1 or num_requests < 1:
            raise ConfigError("bursty schedule needs users and requests")
        rng = ensure_rng(seed + 1)
        requests: list[TrafficRequest] = []
        gaps: list[float] = []
        t = 0.0
        for __ in range(num_requests):
            user = int(rng.integers(num_users))
            requests.append(
                TrafficRequest(
                    at=t, persona="bursty_replay", member=0, user_id=user, k=10
                )
            )
            gap = (
                LEGACY_SERVICE_TIME
                if rng.random() < 0.7
                else LEGACY_BURST_GAP
            )
            gaps.append(gap)
            t += gap
        schedule = cls.__new__(cls)
        schedule.population = None
        schedule.profile = None
        schedule.seed = int(seed)
        schedule.epoch = 0
        schedule.start = 0.0
        schedule.horizon = t
        schedule._requests = requests
        schedule._gaps = gaps
        return schedule

    # -------------------------------------------------------------- #
    def _member_arrivals(self, member: PersonaMember) -> list[TrafficRequest]:
        """Ogata thinning of the member's inhomogeneous Poisson process."""
        profile = self.profile
        peak = member.rate * profile.peak_modulation(member)
        if peak <= 0:
            return []
        rng = np.random.default_rng((self.seed, self.epoch, member.member))
        arche = member.archetype
        out: list[TrafficRequest] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= profile.horizon:
                break
            intensity = member.rate * profile.modulation(t, member)
            if rng.random() * peak > intensity:
                continue  # thinned: candidate rejected
            burst = int(rng.integers(arche.burst_size[0], arche.burst_size[1] + 1))
            for j in range(burst):
                at = t + j * arche.within_gap
                if at >= profile.horizon:
                    break
                k = int(arche.k_choices[int(rng.integers(len(arche.k_choices)))])
                out.append(
                    TrafficRequest(
                        at=self.start + at,
                        persona=member.persona,
                        member=member.member,
                        user_id=member.user_id,
                        k=k,
                        exclude_seen=arche.exclude_seen,
                    )
                )
        return out

    def materialize(self) -> list[TrafficRequest]:
        """Generate (once) and return the time-sorted request list.

        Sorting key is ``(at, member, position)`` with a stable sort, so
        same-instant requests order deterministically and burst order
        within a member is preserved.
        """
        if self._requests is None:
            merged: list[TrafficRequest] = []
            for member in self.population.members:
                merged.extend(self._member_arrivals(member))
            merged.sort(key=lambda r: (r.at, r.member))
            self._requests = merged
        return self._requests

    # -------------------------------------------------------------- #
    def __iter__(self):
        return iter(self.materialize())

    def __len__(self) -> int:
        return len(self.materialize())

    def gaps(self) -> list[float]:
        """Per-request clock advance for closed-style replay drivers.

        ``gaps()[i]`` is the simulated time between serving request ``i``
        and request ``i + 1`` (the last gap runs to the horizon).  Legacy
        bursty schedules return the exact drawn gap values.
        """
        if self._gaps is not None:
            return list(self._gaps)
        requests = self.materialize()
        out = []
        for i, r in enumerate(requests):
            nxt = (
                requests[i + 1].at if i + 1 < len(requests) else self.horizon
            )
            out.append(max(0.0, nxt - r.at))
        return out

    def request_rate(self) -> float:
        """Mean scheduled requests per simulated second."""
        span = self.horizon - self.start
        return len(self) / span if span > 0 else 0.0

    def persona_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.materialize():
            out[r.persona] = out.get(r.persona, 0) + 1
        return dict(sorted(out.items()))

    def continuation(self) -> "TrafficSchedule":
        """The next window: same population/profile, epoch + 1, shifted.

        Arrival RNG streams are keyed by epoch, so extending a run never
        replays or perturbs earlier windows.
        """
        if self.population is None:
            raise ConfigError("legacy bursty schedules do not extend")
        return TrafficSchedule(
            self.population,
            self.profile,
            seed=self.seed,
            epoch=self.epoch + 1,
            start=self.horizon,
        )

    def describe(self) -> str:
        counts = self.persona_counts()
        parts = ", ".join(f"{n}={c}" for n, c in counts.items())
        return (
            f"schedule[{self.seed}:{self.epoch}]: {len(self)} requests over "
            f"{self.horizon - self.start:.3f}s "
            f"({self.request_rate():.0f} rps) — {parts}"
        )
