"""Persona-driven interaction stream: the traffic → online-loop bridge.

PR 9 left one explicit gap: :class:`~repro.online.loop.OnlineLoop` ran
from a purpose-built arrival process instead of the traffic simulator's
persona streams.  :class:`PersonaInteractionStream` closes it by
subclassing :class:`~repro.online.stream.InteractionStream` and
overriding only the two arrival hooks:

* ``_draw_user`` follows a materialized
  :class:`~repro.traffic.schedule.TrafficSchedule` — each batch is the
  next scheduled request's member.  Members of newcomer archetypes are
  introduced as *stream* newcomers on first arrival (sequential ids,
  ``introduced_users`` bookkeeping intact — the churn matrix's
  invariants don't know the arrivals changed); warm members map
  deterministically onto the warm user prefix;
* ``_arrival_gap`` advances the shared clock to the next scheduled
  request, so inter-batch gaps carry the personas' bursts, diurnal
  cycles, and flash crowds instead of a constant.

Session composition (which items a session touches, new-item churn) is
untouched base-class behavior and consumes the stream RNG in the same
order, so everything downstream — quarantine isolation, commit cycles,
bitwise old-or-new serving — holds under persona arrivals.  When the
schedule window runs out, :meth:`~repro.traffic.schedule.TrafficSchedule.continuation`
materializes the next epoch (fresh per-member RNG streams, shifted
start), so the stream never ends before the loop does.
"""

from __future__ import annotations

from repro.core.clock import ManualClock
from repro.core.exceptions import ConfigError
from repro.online.stream import InteractionStream, StreamConfig

from .personas import PersonaPopulation
from .schedule import ScheduleProfile, TrafficSchedule

__all__ = ["PersonaInteractionStream", "persona_stream_factory"]


class PersonaInteractionStream(InteractionStream):
    """An :class:`InteractionStream` whose arrivals follow personas."""

    def __init__(
        self,
        config: StreamConfig | None = None,
        clock: ManualClock | None = None,
        seed: int = 0,
        population: PersonaPopulation | None = None,
        profile: ScheduleProfile | None = None,
    ) -> None:
        super().__init__(config, clock=clock, seed=seed)
        c = self.config
        if population is None:
            population = PersonaPopulation.from_scenario(
                "movie", num_users=c.num_users, seed=seed,
                num_members=min(c.num_users, 24),
            )
        if population.num_users > c.num_users:
            raise ConfigError(
                f"population addresses {population.num_users} users, "
                f"stream capacity is {c.num_users}"
            )
        self.population = population
        self.profile = profile if profile is not None else ScheduleProfile()
        self._schedule = TrafficSchedule(population, self.profile, seed=seed)
        self._events = self._schedule.materialize()
        self._cursor = 0
        #: member index -> stream user id, bound on first arrival.
        self._member_user: dict[int, int] = {}
        self._members = {m.member: m for m in population.members}

    # ------------------------------------------------------------------ #
    def _advance_window(self) -> None:
        self._schedule = self._schedule.continuation()
        self._events = self._schedule.materialize()
        self._cursor = 0

    def _next_event(self):
        # A quiet window (rare at sane rates) is skipped, not an error.
        guard = 0
        while self._cursor >= len(self._events):
            self._advance_window()
            guard += 1
            if guard > 64:
                raise ConfigError(
                    "persona schedule produced 64 empty windows; "
                    "rate_scale is effectively zero"
                )
        event = self._events[self._cursor]
        self._cursor += 1
        return event

    # ------------------------------------------------------------------ #
    # arrival hooks
    # ------------------------------------------------------------------ #
    def _draw_user(self, step: int) -> tuple[int, tuple[int, ...]]:
        event = self._next_event()
        member = self._members[event.member]
        bound = self._member_user.get(member.member)
        if bound is not None:
            return bound, ()
        if member.archetype.newcomer and self.seen_users < self.config.num_users:
            user = self.seen_users
            self.seen_users += 1
            self.introduced_users.append((step, user))
            self._member_user[member.member] = user
            return user, (user,)
        # Warm member (or capacity exhausted): deterministic map into the
        # currently visible population — no RNG consumed.
        user = member.user_id % self.seen_users
        self._member_user[member.member] = user
        return user, ()

    def _arrival_gap(self) -> float:
        now = self.clock()
        if self._cursor < len(self._events):
            return max(0.0, self._events[self._cursor].at - now)
        return max(0.0, self._schedule.horizon - now)

    # ------------------------------------------------------------------ #
    @property
    def current_persona(self) -> str:
        """Persona of the most recently emitted batch (diagnostics)."""
        index = max(0, self._cursor - 1)
        if index < len(self._events):
            return self._events[index].persona
        return "-"


def persona_stream_factory(
    population: PersonaPopulation | None = None,
    profile: ScheduleProfile | None = None,
    scenario: str = "movie",
    num_members: int | None = None,
):
    """A ``stream_factory`` for :func:`repro.online.harness.build_world`.

    Returns ``factory(config, clock, seed)`` building a
    :class:`PersonaInteractionStream`; with no explicit population, one
    is sampled from ``scenario`` per seed (sized to the stream config).
    """

    def factory(
        config: StreamConfig, clock: ManualClock, seed: int
    ) -> PersonaInteractionStream:
        pop = population
        if pop is None:
            pop = PersonaPopulation.from_scenario(
                scenario,
                num_users=config.num_users,
                seed=seed,
                num_members=(
                    num_members
                    if num_members is not None
                    else min(config.num_users, 24)
                ),
            )
        return PersonaInteractionStream(
            config, clock=clock, seed=seed, population=pop, profile=profile
        )

    return factory
