"""Shared fixtures: tiny deterministic datasets and graphs.

Session-scoped so the (cheap) generators run once; tests must not mutate
fixture objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.interactions import InteractionMatrix
from repro.core.splitter import random_split
from repro.data import make_movie_dataset, make_news_dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore


@pytest.fixture(scope="session")
def tiny_kg() -> KnowledgeGraph:
    """A 6-entity, 2-relation typed graph used by unit tests.

    Entities: 0,1 items; 2,3 genres; 4,5 actors.
    Facts: items link to one genre and one actor each; both items share
    genre 2 (so item-genre-item paths exist).
    """
    triples = [
        (0, 0, 2),  # item0 -has_genre-> genre2
        (1, 0, 2),  # item1 -has_genre-> genre2
        (1, 0, 3),  # item1 -has_genre-> genre3
        (0, 1, 4),  # item0 -acted_by-> actor4
        (1, 1, 5),  # item1 -acted_by-> actor5
    ]
    store = TripleStore.from_triples(triples, num_entities=6, num_relations=2)
    return KnowledgeGraph(
        store,
        entity_labels=["item0", "item1", "genre2", "genre3", "actor4", "actor5"],
        relation_labels=["has_genre", "acted_by"],
        entity_types=np.asarray([0, 0, 1, 1, 2, 2]),
        type_names=["item", "genre", "actor"],
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_kg) -> Dataset:
    """Two users, two items, aligned with ``tiny_kg``."""
    interactions = InteractionMatrix.from_pairs(
        [(0, 0), (0, 1), (1, 1)], num_users=2, num_items=2
    )
    return Dataset(
        name="tiny",
        interactions=interactions,
        kg=tiny_kg,
        item_entities=np.asarray([0, 1]),
    )


@pytest.fixture(scope="session")
def movie_dataset() -> Dataset:
    """Small movie-scenario dataset shared across model tests."""
    return make_movie_dataset(seed=7, num_users=40, num_items=60)


@pytest.fixture(scope="session")
def movie_split(movie_dataset):
    return random_split(movie_dataset, seed=7)


@pytest.fixture(scope="session")
def news_dataset() -> Dataset:
    return make_news_dataset(seed=3, num_users=25, num_items=40)
