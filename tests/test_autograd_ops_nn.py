"""Tests for composite ops, layers, optimizers, and losses."""

import numpy as np
import pytest

from repro.autograd import Adagrad, Adam, SGD, losses, nn, ops
from repro.autograd.tensor import Tensor

from .test_autograd_tensor import numeric_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        out = ops.softmax(Tensor(x), axis=1).numpy()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(3))

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(2, 4))
        a = ops.softmax(Tensor(x), axis=1).numpy()
        b = ops.softmax(Tensor(x + 100.0), axis=1).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_gradient(self):
        x = np.random.default_rng(2).normal(size=(2, 3))
        t = Tensor(x, requires_grad=True)
        (ops.softmax(t, axis=1) ** 2).sum().backward()

        def f(a):
            e = np.exp(a - a.max(axis=1, keepdims=True))
            s = e / e.sum(axis=1, keepdims=True)
            return (s**2).sum()

        np.testing.assert_allclose(t.grad, numeric_grad(f, x), rtol=1e-5, atol=1e-8)

    def test_log_softmax_gradient(self):
        x = np.random.default_rng(3).normal(size=(2, 3))
        t = Tensor(x, requires_grad=True)
        (ops.log_softmax(t, axis=1) * 0.3).sum().backward()

        def f(a):
            shifted = a - a.max(axis=1, keepdims=True)
            ls = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return (ls * 0.3).sum()

        np.testing.assert_allclose(t.grad, numeric_grad(f, x), rtol=1e-5, atol=1e-8)


class TestConcatStack:
    def test_concat_values(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)

    def test_concat_gradient_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        (ops.concat([a, b], axis=1) * np.arange(5.0)).sum().backward()
        np.testing.assert_allclose(a.grad, np.tile([0.0, 1.0], (2, 1)))
        np.testing.assert_allclose(b.grad, np.tile([2.0, 3.0, 4.0], (2, 1)))

    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * np.asarray([[1.0], [2.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.full(3, 2.0))


class TestLayers:
    def test_linear_shapes(self):
        layer = nn.Linear(4, 3, seed=0)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, seed=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        emb = nn.Embedding(10, 4, seed=0)
        out = emb(np.asarray([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_embedding_gradient_scatter(self):
        emb = nn.Embedding(5, 3, seed=0)
        emb(np.asarray([2, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], np.full(3, 2.0))
        np.testing.assert_allclose(emb.weight.grad[0], np.zeros(3))

    def test_mlp_depth(self):
        mlp = nn.MLP([4, 8, 2], seed=0)
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_gru_step_shapes_and_grad(self):
        cell = nn.GRUCell(3, 5, seed=0)
        h = cell.initial_state(2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3)))
        h2 = cell(x, h)
        assert h2.shape == (2, 5)
        h2.sum().backward()
        assert all(p.grad is not None for p in cell.parameters())

    def test_lstm_step(self):
        cell = nn.LSTMCell(3, 4, seed=0)
        h, c = cell.initial_state(2)
        x = Tensor(np.ones((2, 3)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (2, 4) and c2.shape == (2, 4)

    def test_additive_attention_weights_sum(self):
        att = nn.AdditiveAttention(4, 4, seed=0)
        keys = Tensor(np.random.default_rng(1).normal(size=(6, 4)))
        query = Tensor(np.random.default_rng(2).normal(size=4))
        weights, pooled = att(keys, query)
        np.testing.assert_allclose(weights.numpy().sum(), 1.0)
        assert pooled.shape == (4,)

    def test_conv1d_output_length(self):
        conv = nn.Conv1d(4, 6, kernel_size=3, seed=0)
        out = conv(Tensor(np.ones((10, 4))))
        assert out.shape == (8, 6)

    def test_conv1d_too_short(self):
        conv = nn.Conv1d(4, 6, kernel_size=3, seed=0)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((2, 4))))

    def test_module_collects_nested_params(self):
        class Net(nn.Module):
            def __init__(self):
                self.layers = [nn.Linear(2, 2, seed=0), nn.Linear(2, 2, seed=1)]
                self.emb = nn.Embedding(3, 2, seed=2)

        net = Net()
        assert len(net.parameters()) == 5  # 2x(W,b) + embedding

    def test_module_dedupes_shared_params(self):
        shared = nn.Linear(2, 2, seed=0)

        class Net(nn.Module):
            def __init__(self):
                self.a = shared
                self.b = shared

        assert len(Net().parameters()) == 2


class TestOptimizers:
    def _quadratic_steps(self, optimizer_cls, steps=200, **kwargs):
        x = nn.Parameter(np.asarray([5.0, -3.0]))
        opt = optimizer_cls([x], **kwargs)
        for __ in range(steps):
            loss = (x * x).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return np.abs(x.data).max()

    def test_sgd_converges(self):
        assert self._quadratic_steps(SGD, lr=0.1) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_steps(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adagrad_converges(self):
        assert self._quadratic_steps(Adagrad, lr=1.0) < 0.3

    def test_adam_converges(self):
        assert self._quadratic_steps(Adam, lr=0.2) < 1e-3

    def test_weight_decay_shrinks(self):
        x = nn.Parameter(np.asarray([1.0]))
        opt = SGD([x], lr=0.1, weight_decay=0.5)
        loss = (x * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert x.data[0] < 1.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=-1.0)

    def test_skips_params_without_grad(self):
        x = nn.Parameter(np.asarray([1.0]))
        Adam([x], lr=0.1).step()  # no backward happened
        np.testing.assert_allclose(x.data, [1.0])


class TestLosses:
    def test_bpr_loss_ordering(self):
        good = losses.bpr_loss(Tensor(np.asarray([5.0])), Tensor(np.asarray([-5.0])))
        bad = losses.bpr_loss(Tensor(np.asarray([-5.0])), Tensor(np.asarray([5.0])))
        assert good.item() < bad.item()

    def test_bpr_loss_at_equality(self):
        loss = losses.bpr_loss(Tensor(np.zeros(3)), Tensor(np.zeros(3)))
        np.testing.assert_allclose(loss.item(), np.log(2.0), rtol=1e-6)

    def test_bce_matches_manual(self):
        logits = np.asarray([0.5, -1.0, 2.0])
        targets = np.asarray([1.0, 0.0, 1.0])
        loss = losses.bce_with_logits(Tensor(logits), targets).item()
        p = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        np.testing.assert_allclose(loss, manual, rtol=1e-8)

    def test_bce_gradient(self):
        logits = np.random.default_rng(0).normal(size=4)
        targets = np.asarray([1.0, 0.0, 1.0, 0.0])
        t = Tensor(logits, requires_grad=True)
        losses.bce_with_logits(t, targets).backward()

        def f(a):
            return (np.logaddexp(0, a) - targets * a).mean()

        np.testing.assert_allclose(t.grad, numeric_grad(f, logits), rtol=1e-5)

    def test_margin_loss_zero_when_separated(self):
        # distance-style: positive (small) vs negative (large)
        loss = losses.margin_ranking_loss(
            Tensor(np.asarray([0.1])), Tensor(np.asarray([5.0])), margin=1.0
        )
        assert loss.item() == 0.0

    def test_margin_loss_positive_when_violated(self):
        loss = losses.margin_ranking_loss(
            Tensor(np.asarray([2.0])), Tensor(np.asarray([0.5])), margin=1.0
        )
        np.testing.assert_allclose(loss.item(), 2.5)

    def test_mse(self):
        loss = losses.mse_loss(Tensor(np.asarray([1.0, 2.0])), np.asarray([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)
