"""Finite-difference gradient checks for the recurrent cells.

RKGE/KPRN/KSR depend on the GRU/LSTM gradients being exact; these tests
verify multi-step unrolled cells against numeric differentiation of a pure
NumPy reimplementation of the same equations.
"""

import numpy as np

from repro.autograd import nn
from repro.autograd.tensor import Tensor

from .test_autograd_tensor import numeric_grad


def _sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


class TestGRUGradient:
    def _numpy_forward(self, cell, x_seq, h0):
        """Pure-NumPy replica of the GRUCell equations."""
        wz, bz = cell.w_z.weight.data, cell.w_z.bias.data
        wr, br = cell.w_r.weight.data, cell.w_r.bias.data
        wh, bh = cell.w_h.weight.data, cell.w_h.bias.data
        h = h0
        for x in x_seq:
            xh = np.concatenate([x, h], axis=-1)
            z = _sigmoid(xh @ wz + bz)
            r = _sigmoid(xh @ wr + br)
            cand = np.tanh(np.concatenate([x, r * h], axis=-1) @ wh + bh)
            h = (1 - z) * h + z * cand
        return h

    def test_two_step_unroll_input_gradient(self):
        rng = np.random.default_rng(0)
        cell = nn.GRUCell(3, 4, seed=1)
        x_data = rng.normal(size=(2, 2, 3))  # (steps, batch, in)

        def f(x_flat):
            x = x_flat.reshape(2, 2, 3)
            h = self._numpy_forward(cell, [x[0], x[1]], np.zeros((2, 4)))
            return (h**2).sum()

        x0 = Tensor(x_data[0].copy(), requires_grad=True)
        x1 = Tensor(x_data[1].copy(), requires_grad=True)
        h = cell.initial_state(2)
        h = cell(x0, h)
        h = cell(x1, h)
        (h * h).sum().backward()
        numeric = numeric_grad(f, x_data.reshape(-1)).reshape(2, 2, 3)
        np.testing.assert_allclose(x0.grad, numeric[0], rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(x1.grad, numeric[1], rtol=1e-4, atol=1e-7)

    def test_weight_gradient(self):
        rng = np.random.default_rng(2)
        cell = nn.GRUCell(2, 3, seed=3)
        x_data = rng.normal(size=(2, 2))
        w0 = cell.w_z.weight.data.copy()

        def f(w_flat):
            cell.w_z.weight.data[:] = w_flat.reshape(w0.shape)
            out = self._numpy_forward(cell, [x_data], np.zeros((2, 3)))
            cell.w_z.weight.data[:] = w0
            return (out**2).sum()

        h = cell(Tensor(x_data), cell.initial_state(2))
        (h * h).sum().backward()
        numeric = numeric_grad(f, w0.reshape(-1)).reshape(w0.shape)
        np.testing.assert_allclose(cell.w_z.weight.grad, numeric, rtol=1e-4, atol=1e-7)


class TestLSTMGradient:
    def _numpy_forward(self, cell, x, h, c):
        wi, bi = cell.w_i.weight.data, cell.w_i.bias.data
        wf, bf = cell.w_f.weight.data, cell.w_f.bias.data
        wo, bo = cell.w_o.weight.data, cell.w_o.bias.data
        wc, bc = cell.w_c.weight.data, cell.w_c.bias.data
        xh = np.concatenate([x, h], axis=-1)
        i = _sigmoid(xh @ wi + bi)
        f = _sigmoid(xh @ wf + bf)
        o = _sigmoid(xh @ wo + bo)
        g = np.tanh(xh @ wc + bc)
        c_next = f * c + i * g
        return o * np.tanh(c_next), c_next

    def test_single_step_input_gradient(self):
        rng = np.random.default_rng(4)
        cell = nn.LSTMCell(3, 4, seed=5)
        x_data = rng.normal(size=(2, 3))

        def f(x_flat):
            h, __ = self._numpy_forward(
                cell, x_flat.reshape(2, 3), np.zeros((2, 4)), np.zeros((2, 4))
            )
            return (h**2).sum()

        x = Tensor(x_data.copy(), requires_grad=True)
        h, c = cell.initial_state(2)
        h_next, __ = cell(x, (h, c))
        (h_next * h_next).sum().backward()
        numeric = numeric_grad(f, x_data.reshape(-1)).reshape(2, 3)
        np.testing.assert_allclose(x.grad, numeric, rtol=1e-4, atol=1e-7)

    def test_cell_state_flows_through_two_steps(self):
        """Gradient must flow through c as well as h across steps."""
        rng = np.random.default_rng(6)
        cell = nn.LSTMCell(2, 3, seed=7)
        x_data = rng.normal(size=(2, 1, 2))

        def f(x_flat):
            x = x_flat.reshape(2, 1, 2)
            h = np.zeros((1, 3))
            c = np.zeros((1, 3))
            h, c = self._numpy_forward(cell, x[0], h, c)
            h, c = self._numpy_forward(cell, x[1], h, c)
            return (c**2).sum()  # loss on the *cell* state

        x0 = Tensor(x_data[0].copy(), requires_grad=True)
        x1 = Tensor(x_data[1].copy(), requires_grad=True)
        h, c = cell.initial_state(1)
        h, c = cell(x0, (h, c))
        h, c = cell(x1, (h, c))
        (c * c).sum().backward()
        numeric = numeric_grad(f, x_data.reshape(-1)).reshape(2, 1, 2)
        np.testing.assert_allclose(x0.grad, numeric[0], rtol=1e-4, atol=1e-7)
        np.testing.assert_allclose(x1.grad, numeric[1], rtol=1e-4, atol=1e-7)
