"""Sparse-gradient training path tests.

Covers the row-sparse embedding gradient (:mod:`repro.autograd.sparse`),
its production in ``Tensor.__getitem__`` / ``nn.Embedding``, accumulation
semantics, the lazy row-wise optimizers, sparse-aware runtime guards, and
the end-to-end bitwise guarantees (``dense_updates=True`` reproduces the
historical dense path; checkpoint/resume stays bitwise with sparse
updates on).
"""

import numpy as np
import pytest

from repro.autograd import nn, ops
from repro.autograd import tensor as tensor_mod
from repro.autograd.nn import Parameter
from repro.autograd.optim import SGD, Adagrad, Adam
from repro.autograd.sparse import SparseGrad, coalesce_rows
from repro.autograd.tensor import Tensor
from repro.kg.triples import TripleStore
from repro.kge import DistMult, TransE
from repro.runtime import (
    Checkpointer,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    TrainingRuntime,
    clip_grad_norm,
    grad_norm,
    has_nonfinite_grad,
    raw_grad,
    zero_nonfinite_grads,
)


def numeric_grad(f, x, eps=1e-6):
    """Central finite differences of scalar-valued f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


def add_at_reference(shape, rows, vals):
    """The seed's dense scatter: zeros + np.add.at."""
    out = np.zeros(shape)
    np.add.at(out, rows, vals)
    return out


@pytest.fixture
def dense_lookup_grads():
    """Force the historical dense scatter backward for the test body."""
    tensor_mod.SPARSE_LOOKUP_GRADS = False
    yield
    tensor_mod.SPARSE_LOOKUP_GRADS = True


@pytest.fixture(scope="module")
def small_store():
    rng = np.random.default_rng(7)
    triples = [
        (int(rng.integers(15)), int(rng.integers(3)), int(rng.integers(15)))
        for __ in range(40)
    ]
    return TripleStore.from_triples(triples, 15, 3)


# ---------------------------------------------------------------------- #
# coalescing kernel
# ---------------------------------------------------------------------- #
class TestCoalesceRows:
    def test_duplicates_summed_bitwise_like_add_at(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 9, size=50).astype(np.int64)
        vals = rng.standard_normal((50, 4))
        unique, summed = coalesce_rows(rows, vals)
        assert np.array_equal(unique, np.unique(rows))
        dense = np.zeros((9, 4))
        dense[unique] = summed
        assert np.array_equal(dense, add_at_reference((9, 4), rows, vals))

    def test_no_duplicates_reorders_to_ascending(self):
        rows = np.array([5, 2, 8], dtype=np.int64)
        vals = np.arange(6.0).reshape(3, 2)
        unique, summed = coalesce_rows(rows, vals)
        assert unique.tolist() == [2, 5, 8]
        assert np.array_equal(summed, vals[[1, 0, 2]])

    def test_empty(self):
        unique, summed = coalesce_rows(
            np.empty(0, dtype=np.int64), np.empty((0, 3))
        )
        assert unique.size == 0 and summed.shape == (0, 3)


class TestSparseGrad:
    def test_to_dense_matches_add_at(self):
        rows = np.array([1, 3, 1, 0], dtype=np.int64)
        vals = np.arange(8.0).reshape(4, 2)
        g = SparseGrad((5, 2), rows, vals.copy())
        assert np.array_equal(g.to_dense(), add_at_reference((5, 2), rows, vals))

    def test_coalesce_is_idempotent_and_owns_arrays(self):
        rows = np.array([2, 2], dtype=np.int64)
        vals = np.ones((2, 3))
        g = SparseGrad((4, 3), rows, vals)
        g.coalesce()
        assert g.is_coalesced and g.nnz == 1
        assert g.rows is not rows and g.vals is not vals
        assert np.array_equal(vals, np.ones((2, 3)))  # producer's view intact
        before = (g.rows, g.vals)
        g.coalesce()
        assert (g.rows, g.vals) == before

    def test_merge_preserves_accumulation_order(self):
        a = SparseGrad((4, 1), np.array([1], dtype=np.int64), np.array([[1.0]]))
        b = SparseGrad((4, 1), np.array([1], dtype=np.int64), np.array([[2.0]]))
        merged = a.merge(b)
        assert merged.rows.tolist() == [1, 1]
        assert merged.to_dense()[1, 0] == 3.0

    def test_merge_shape_mismatch_raises(self):
        a = SparseGrad((4, 1), np.array([0], dtype=np.int64), np.zeros((1, 1)))
        b = SparseGrad((5, 1), np.array([0], dtype=np.int64), np.zeros((1, 1)))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_add_into_scatters_in_place(self):
        g = SparseGrad(
            (3, 2), np.array([0, 0], dtype=np.int64), np.ones((2, 2))
        )
        dense = np.full((3, 2), 10.0)
        out = g.add_into(dense)
        assert out is dense
        assert dense[0].tolist() == [12.0, 12.0] and dense[1].tolist() == [10.0, 10.0]


# ---------------------------------------------------------------------- #
# lookup backward
# ---------------------------------------------------------------------- #
class TestLookupBackward:
    def test_leaf_lookup_produces_sparse_grad(self):
        w = Parameter(np.random.default_rng(0).standard_normal((10, 3)))
        idx = np.array([4, 7, 4])
        (w[idx] * 2.0).sum().backward()
        assert isinstance(w.raw_grad, SparseGrad)
        assert w.raw_grad.shape == (10, 3)

    def test_sparse_grad_matches_finite_differences(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, 3))
        idx = np.array([0, 2, 2, 5])
        coeff = rng.standard_normal((4, 3))

        w = Parameter(x)
        (w[idx] * coeff).sum().backward()
        expected = numeric_grad(lambda a: (a[idx] * coeff).sum(), x)
        np.testing.assert_allclose(w.grad, expected, rtol=1e-6, atol=1e-8)

    def test_grad_property_densifies_in_place(self):
        w = Parameter(np.ones((5, 2)))
        w[np.array([1, 1])].sum().backward()
        assert isinstance(w.raw_grad, SparseGrad)
        dense = w.grad
        assert isinstance(dense, np.ndarray)
        assert w.raw_grad is dense  # cached: repeated reads are free
        assert dense[1].tolist() == [2.0, 2.0]

    @pytest.mark.parametrize(
        "index",
        [
            np.array([0, 3, 3, 7]),
            np.array([-1, 2, -8]),  # negative rows normalize
            [1, 1, 4],  # python list
            3,  # scalar row
            np.array([[0, 2], [2, 5]]),  # 2-d gather (neighbor batches)
        ],
    )
    def test_sparse_and_dense_paths_bitwise_equal(self, index):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 4))
        upstream = rng.standard_normal(np.asarray(x[index]).shape)

        grads = {}
        for flag in (True, False):
            tensor_mod.SPARSE_LOOKUP_GRADS = flag
            try:
                w = Parameter(x.copy())
                (w[index] * upstream).sum().backward()
            finally:
                tensor_mod.SPARSE_LOOKUP_GRADS = True
            grads[flag] = w.grad
        assert np.array_equal(grads[True], grads[False])
        rows = np.asarray(index).reshape(-1) % 8
        ref = add_at_reference((8, 4), rows, upstream.reshape(rows.size, -1))
        assert np.array_equal(grads[False], ref)

    def test_dense_int_kernel_bitwise_equals_add_at(self, dense_lookup_grads):
        # The satellite: the rewritten dense scatter (coalesce + assign)
        # must match the seed's np.add.at bitwise, duplicates included.
        rng = np.random.default_rng(3)
        x = rng.standard_normal((12, 5))
        idx = rng.integers(0, 12, size=64)
        upstream = rng.standard_normal((64, 5))
        w = Parameter(x)
        (w[idx] * upstream).sum().backward()
        assert np.array_equal(w.grad, add_at_reference((12, 5), idx, upstream))

    def test_non_leaf_lookup_stays_dense(self):
        w = Parameter(np.random.default_rng(4).standard_normal((6, 2)))
        scaled = w * 1.0  # interior node: grads must propagate densely
        scaled[np.array([1, 1, 3])].sum().backward()
        assert isinstance(w.raw_grad, np.ndarray)
        expected = add_at_reference((6, 2), np.array([1, 1, 3]), np.ones((3, 2)))
        np.testing.assert_allclose(w.grad, expected)

    def test_one_dim_parameter_lookup_stays_dense(self):
        b = Parameter(np.arange(5.0))
        b[np.array([0, 0, 4])].sum().backward()
        assert isinstance(b.raw_grad, np.ndarray)
        assert b.grad.tolist() == [2.0, 0.0, 0.0, 0.0, 1.0]

    def test_slice_and_mask_indexing_still_differentiable(self):
        w = Parameter(np.arange(12.0).reshape(4, 3))
        w[1:3].sum().backward()
        assert isinstance(w.raw_grad, np.ndarray)
        np.testing.assert_allclose(w.grad[1:3], 1.0)
        np.testing.assert_allclose(w.grad[[0, 3]], 0.0)

        w2 = Parameter(np.arange(4.0))
        w2[np.array([True, False, True, False])].sum().backward()
        assert w2.grad.tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_embedding_module_produces_sparse_grad(self):
        emb = nn.Embedding(9, 4, seed=0)
        emb(np.array([2, 8, 2])).sum().backward()
        assert isinstance(emb.weight.raw_grad, SparseGrad)


# ---------------------------------------------------------------------- #
# accumulation mixing
# ---------------------------------------------------------------------- #
class TestAccumulateMixing:
    def test_two_lookups_merge_sparsely(self):
        w = Parameter(np.ones((7, 2)))
        loss = w[np.array([1, 2])].sum() + w[np.array([2, 3])].sum()
        loss.backward()
        assert isinstance(w.raw_grad, SparseGrad)
        expected = np.zeros((7, 2))
        expected[[1, 3]] = 1.0
        expected[2] = 2.0
        assert np.array_equal(w.grad, expected)

    def test_sparse_then_dense_densifies(self):
        w = Parameter(np.full((5, 2), 2.0))
        loss = w[np.array([0, 0])].sum() + (w * 3.0).sum()
        loss.backward()
        assert isinstance(w.raw_grad, np.ndarray)
        expected = np.full((5, 2), 3.0)
        expected[0] += 2.0
        np.testing.assert_allclose(w.grad, expected)

    def test_grad_over_reuse_of_lookup_output(self):
        w = Parameter(np.full((4, 2), 3.0))
        row = w[np.array([1])]
        (row * row).sum().backward()
        np.testing.assert_allclose(w.grad[1], 6.0)
        np.testing.assert_allclose(w.grad[0], 0.0)

    def test_manual_grad_assignment_still_supported(self):
        p = Parameter(np.zeros((3, 2)))
        p.grad = np.zeros_like(p.data)
        p.grad[1] = 5.0  # in-place writes through the property
        assert raw_grad(p)[1].tolist() == [5.0, 5.0]
        p.zero_grad()
        assert p.raw_grad is None


# ---------------------------------------------------------------------- #
# lazy optimizers
# ---------------------------------------------------------------------- #
def _lookup_step(w, opt, idx, coeff):
    opt.zero_grad()
    (w[idx] * coeff).sum().backward()
    opt.step()


def _paired(optim_cls, seed=0, rows=10, dim=3, **kwargs):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((rows, dim))
    w_sparse = Parameter(data.copy())
    w_dense = Parameter(data.copy())
    return (
        w_sparse,
        optim_cls([w_sparse], **kwargs),
        w_dense,
        optim_cls([w_dense], dense_updates=True, **kwargs),
    )


class TestLazyOptimizers:
    @pytest.mark.parametrize("optim_cls", [SGD, Adagrad, Adam])
    def test_repeated_rows_match_dense_bitwise(self, optim_cls):
        # With weight_decay=0 and the same rows touched every step, the
        # lazy update is the dense update exactly (untouched rows are fixed
        # points of all three rules).
        w_s, opt_s, w_d, opt_d = _paired(optim_cls, lr=0.05)
        idx = np.array([1, 4, 1, 9])
        coeff = np.random.default_rng(1).standard_normal((4, 3))
        for __ in range(5):
            _lookup_step(w_s, opt_s, idx, coeff)
            _lookup_step(w_d, opt_d, idx, coeff)
        assert np.array_equal(w_s.data, w_d.data)

    @pytest.mark.parametrize("optim_cls", [SGD, Adagrad, Adam])
    def test_first_step_matches_dense_bitwise_any_rows(self, optim_cls):
        w_s, opt_s, w_d, opt_d = _paired(optim_cls, seed=2, lr=0.1)
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 10, size=6)
        coeff = rng.standard_normal((6, 3))
        _lookup_step(w_s, opt_s, idx, coeff)
        _lookup_step(w_d, opt_d, idx, coeff)
        assert np.array_equal(w_s.data, w_d.data)

    def test_momentum_sgd_densifies_and_matches(self):
        w_s, opt_s, w_d, opt_d = _paired(SGD, lr=0.05, momentum=0.9)
        rng = np.random.default_rng(4)
        for __ in range(4):
            idx = rng.integers(0, 10, size=5)
            coeff = np.ones((5, 3))
            _lookup_step(w_s, opt_s, idx, coeff)
            _lookup_step(w_d, opt_d, idx, coeff)
        assert np.array_equal(w_s.data, w_d.data)

    def test_lazy_weight_decay_shrinks_only_touched_rows(self):
        w = Parameter(np.ones((6, 2)))
        opt = SGD([w], lr=0.5, weight_decay=0.1)
        opt.zero_grad()
        w[np.array([2])].sum().backward()
        opt.step()
        assert np.allclose(w.data[0], 1.0)  # untouched: no decay applied
        # touched row: decayed then stepped
        assert np.allclose(w.data[2], 1.0 * (1 - 0.5 * 0.1) - 0.5 * 1.0)

    def test_dense_weight_decay_shrinks_every_row(self):
        w = Parameter(np.ones((6, 2)))
        opt = SGD([w], lr=0.5, weight_decay=0.1, dense_updates=True)
        opt.zero_grad()
        w[np.array([2])].sum().backward()
        opt.step()
        assert np.allclose(w.data[0], 1.0 * (1 - 0.5 * 0.1))

    def test_lazy_adam_untouched_rows_do_not_move(self):
        w = Parameter(np.ones((6, 2)))
        opt = Adam([w], lr=0.1)
        _lookup_step(w, opt, np.array([0]), np.ones((1, 2)))
        snapshot = w.data[1:].copy()
        _lookup_step(w, opt, np.array([5]), np.ones((1, 2)))
        # Rows 1..4 were never touched; lazy Adam leaves them bitwise intact.
        assert np.array_equal(w.data[1:5], snapshot[:4])

    @pytest.mark.parametrize("optim_cls", [SGD, Adagrad, Adam])
    def test_state_dict_roundtrip_interchangeable_across_modes(self, optim_cls):
        w_s, opt_s, w_d, opt_d = _paired(optim_cls, seed=5, lr=0.05)
        idx = np.array([0, 3])
        coeff = np.ones((2, 3))
        _lookup_step(w_s, opt_s, idx, coeff)
        # Sparse-mode state loads into a dense-mode optimizer and vice versa.
        opt_d.load_state_dict(opt_s.state_dict())
        w_d.data[:] = w_s.data
        _lookup_step(w_s, opt_s, idx, coeff)
        _lookup_step(w_d, opt_d, idx, coeff)
        assert np.array_equal(w_s.data, w_d.data)


# ---------------------------------------------------------------------- #
# sparse-aware guards and faults
# ---------------------------------------------------------------------- #
class TestSparseGuards:
    def _sparse_param(self, rows, vals, shape=(8, 2)):
        p = Parameter(np.zeros(shape))
        p.grad = SparseGrad(shape, np.asarray(rows, dtype=np.int64), np.asarray(vals))
        return p

    def test_grad_norm_coalesces_duplicates(self):
        # Two hits on row 0 of [1.5, 2.0] must be summed *before* the norm:
        # ||(3, 4)|| = 5, not sqrt(2 * ||(1.5, 2)||^2).
        p = self._sparse_param([0, 0], [[1.5, 2.0], [1.5, 2.0]])
        assert grad_norm([p]) == pytest.approx(5.0)

    def test_clip_scales_sparse_entries(self):
        p = self._sparse_param([0, 0], [[1.5, 2.0], [1.5, 2.0]])
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert grad_norm([p]) == pytest.approx(1.0)

    def test_nonfinite_detection_and_repair(self):
        p = self._sparse_param([1, 2], [[np.nan, 0.0], [1.0, 1.0]])
        assert has_nonfinite_grad([p])
        repaired = zero_nonfinite_grads([p])
        assert repaired == 1
        assert not has_nonfinite_grad([p])
        assert p.grad[1].tolist() == [0.0, 0.0]
        assert p.grad[2].tolist() == [1.0, 1.0]

    def test_skip_nonfinite_policies_see_sparse_grads(self):
        p = self._sparse_param([3], [[np.inf, 0.0]])
        opt = SGD([p], lr=0.1, skip_nonfinite="skip")
        assert opt.step() is False
        assert opt.nonfinite_steps == 1
        assert np.array_equal(p.data, np.zeros((8, 2)))

    def test_nan_grad_fault_poisons_sparse_grads(self):
        w = Parameter(np.ones((5, 2)))
        w[np.array([2, 4])].sum().backward()
        injector = FaultInjector(FaultPlan([Fault(step=0, kind="nan_grad")]))
        injector.before_step(0, [w])
        assert isinstance(w.raw_grad, SparseGrad)
        assert has_nonfinite_grad([w])


# ---------------------------------------------------------------------- #
# Module parameter caching
# ---------------------------------------------------------------------- #
class TestModuleParamCache:
    def test_zero_grad_uses_cache_and_invalidates_on_setattr(self):
        class Net(nn.Module):
            def __init__(self):
                self.emb = nn.Embedding(4, 2, seed=0)

        net = Net()
        first = net.cached_parameters()
        assert net.cached_parameters() is first  # memoized
        assert [id(p) for p in first] == [id(p) for p in net.parameters()]

        net.extra = Parameter(np.zeros(3))
        second = net.cached_parameters()
        assert second is not first
        assert any(p is net.extra for p in second)

        for p in second:
            p.grad = np.ones_like(p.data)
        net.zero_grad()
        assert all(p.raw_grad is None for p in net.parameters())

    def test_parameters_does_not_collect_the_cache(self):
        emb = nn.Embedding(3, 2, seed=0)
        emb.cached_parameters()
        assert len(emb.parameters()) == 1


# ---------------------------------------------------------------------- #
# end-to-end fit guarantees
# ---------------------------------------------------------------------- #
def _fit_history(model_cls, store, seed, dense_updates, sparse_lookups, **fit_kw):
    tensor_mod.SPARSE_LOOKUP_GRADS = sparse_lookups
    try:
        model = model_cls(15, 3, dim=4, seed=seed)
        history = model.fit(
            store, epochs=2, batch_size=16, seed=seed + 1,
            dense_updates=dense_updates, **fit_kw,
        )
    finally:
        tensor_mod.SPARSE_LOOKUP_GRADS = True
    return model, history


class TestFitEquivalence:
    # TransE: margin loss + normalize_entities; DistMult: logistic loss.
    @pytest.mark.parametrize("model_cls", [TransE, DistMult])
    def test_dense_updates_reproduce_seed_path_bitwise(self, model_cls, small_store):
        seed_model, seed_hist = _fit_history(
            model_cls, small_store, 0, dense_updates=True, sparse_lookups=False
        )
        dense_model, dense_hist = _fit_history(
            model_cls, small_store, 0, dense_updates=True, sparse_lookups=True
        )
        assert dense_hist == seed_hist
        np.testing.assert_array_equal(
            dense_model.entity.weight.data, seed_model.entity.weight.data
        )
        np.testing.assert_array_equal(
            dense_model.relation.weight.data, seed_model.relation.weight.data
        )

    @pytest.mark.parametrize("model_cls", [TransE, DistMult])
    def test_sparse_fit_tracks_dense_fit(self, model_cls, small_store):
        __, seed_hist = _fit_history(
            model_cls, small_store, 0, dense_updates=True, sparse_lookups=False
        )
        __, sparse_hist = _fit_history(
            model_cls, small_store, 0, dense_updates=False, sparse_lookups=True
        )
        # Lazy Adam is a (documented) semantic variant, so the histories
        # agree approximately, not bitwise.
        np.testing.assert_allclose(sparse_hist, seed_hist, rtol=0.05)

    def test_sparse_fit_is_deterministic(self, small_store):
        __, hist_a = _fit_history(
            TransE, small_store, 0, dense_updates=False, sparse_lookups=True
        )
        __, hist_b = _fit_history(
            TransE, small_store, 0, dense_updates=False, sparse_lookups=True
        )
        assert hist_a == hist_b

    def test_dense_updates_fit_is_deterministic(self, small_store):
        model_a, hist_a = _fit_history(
            TransE, small_store, 0, dense_updates=True, sparse_lookups=True
        )
        model_b, hist_b = _fit_history(
            TransE, small_store, 0, dense_updates=True, sparse_lookups=True
        )
        assert hist_a == hist_b
        np.testing.assert_array_equal(
            model_a.entity.weight.data, model_b.entity.weight.data
        )

    def test_checkpoint_crash_resume_bitwise_with_sparse_updates(
        self, small_store, tmp_path
    ):
        epochs = 6
        reference = TransE(15, 3, dim=4, seed=0)
        ref_history = reference.fit(
            small_store, epochs=epochs, batch_size=64, seed=0
        )

        crashed = TransE(15, 3, dim=4, seed=0)
        runtime = TrainingRuntime(
            checkpointer=Checkpointer(tmp_path, every=1, keep=2),
            faults=FaultInjector(FaultPlan([Fault(step=4, kind="raise")])),
        )
        with pytest.raises(InjectedFault):
            crashed.fit(
                small_store, epochs=epochs, batch_size=64, seed=0, runtime=runtime
            )

        resumed = TransE(15, 3, dim=4, seed=0)
        history = resumed.fit(
            small_store, epochs=epochs, batch_size=64, seed=0,
            runtime=TrainingRuntime(
                checkpointer=Checkpointer(tmp_path, every=1, keep=2)
            ),
        )
        np.testing.assert_array_equal(
            resumed.entity.weight.data, reference.entity.weight.data
        )
        np.testing.assert_array_equal(
            resumed.relation.weight.data, reference.relation.weight.data
        )
        np.testing.assert_allclose(history, ref_history)


# ---------------------------------------------------------------------- #
# tape-level wins
# ---------------------------------------------------------------------- #
class TestTapeHotLoop:
    def test_scalar_reuse_accumulates(self):
        t = Tensor(np.array(2.0), requires_grad=True)
        (t * t).backward()
        np.testing.assert_allclose(t.grad, 4.0)

    def test_lookup_composes_with_downstream_ops(self):
        w = Parameter(np.full((5, 3), 2.0))
        out = ops.relu(w[np.array([1, 1, 4])])
        out.sum().backward()
        expected = add_at_reference((5, 3), np.array([1, 1, 4]), np.ones((3, 3)))
        np.testing.assert_allclose(w.grad, expected)
