"""Autograd engine tests: every op's gradient checked against finite
differences, including a hypothesis property test over random expressions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor


def numeric_grad(f, x, eps=1e-6):
    """Central finite differences of scalar-valued f at x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (f(xp) - f(xm)) / (2 * eps)
        it.iternext()
    return grad


def check_unary(op_tensor, op_np, shape=(3, 4), seed=0, positive=False):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    if positive:
        x = np.abs(x) + 0.5
    t = Tensor(x, requires_grad=True)
    out = op_tensor(t).sum()
    out.backward()
    expected = numeric_grad(lambda a: op_np(a).sum(), x)
    np.testing.assert_allclose(t.grad, expected, rtol=1e-5, atol=1e-7)


class TestElementwiseGrads:
    def test_add(self):
        check_unary(lambda t: t + 3.0, lambda a: a + 3.0)

    def test_mul(self):
        check_unary(lambda t: t * 2.5, lambda a: a * 2.5)

    def test_neg_sub(self):
        check_unary(lambda t: 1.0 - t, lambda a: 1.0 - a)

    def test_div(self):
        check_unary(lambda t: t / 3.0, lambda a: a / 3.0)

    def test_rdiv(self):
        check_unary(lambda t: 2.0 / t, lambda a: 2.0 / a, positive=True)

    def test_pow(self):
        check_unary(lambda t: t**3, lambda a: a**3)

    def test_exp(self):
        check_unary(ops.exp, np.exp)

    def test_log(self):
        check_unary(ops.log, np.log, positive=True)

    def test_sigmoid(self):
        check_unary(ops.sigmoid, lambda a: 1 / (1 + np.exp(-a)))

    def test_tanh(self):
        check_unary(ops.tanh, np.tanh)

    def test_relu(self):
        # Avoid kinks at 0 by shifting away from it.
        check_unary(lambda t: ops.relu(t + 0.1), lambda a: np.maximum(a + 0.1, 0))

    def test_softplus(self):
        check_unary(ops.softplus, lambda a: np.logaddexp(0, a))


class TestBroadcastGrads:
    def test_add_broadcast_vector(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta + tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.full(4, 3.0))

    def test_mul_broadcast_scalar_tensor(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.asarray(2.0), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, 4.0)

    def test_mul_broadcast_middle_axis(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 1, 4))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta * tb).sum().backward()
        np.testing.assert_allclose(tb.grad, a.sum(axis=1, keepdims=True))


class TestMatmulGrads:
    def test_2d_2d(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numeric_grad(lambda x: (x @ b).sum(), a), rtol=1e-5
        )
        np.testing.assert_allclose(
            tb.grad, numeric_grad(lambda x: (a @ x).sum(), b), rtol=1e-5
        )

    def test_1d_2d(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=4)
        b = rng.normal(size=(4, 3))
        ta = Tensor(a, requires_grad=True)
        (ta @ Tensor(b)).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numeric_grad(lambda x: (x @ b).sum(), a), rtol=1e-5
        )

    def test_2d_1d(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=4)
        tb = Tensor(b, requires_grad=True)
        (Tensor(a) @ tb).sum().backward()
        np.testing.assert_allclose(
            tb.grad, numeric_grad(lambda x: (a @ x).sum(), b), rtol=1e-5
        )

    def test_batched(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        (ta @ tb).sum().backward()
        np.testing.assert_allclose(
            ta.grad, numeric_grad(lambda x: (x @ b).sum(), a), rtol=1e-5
        )
        np.testing.assert_allclose(
            tb.grad, numeric_grad(lambda x: (a @ x).sum(), b), rtol=1e-5
        )

    def test_broadcast_batched_by_2d(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        tb = Tensor(b, requires_grad=True)
        (Tensor(a) @ tb).sum().backward()
        np.testing.assert_allclose(
            tb.grad, numeric_grad(lambda x: (a @ x).sum(), b), rtol=1e-5
        )


class TestShapeGrads:
    def test_reshape(self):
        x = np.arange(6.0).reshape(2, 3)
        t = Tensor(x, requires_grad=True)
        (t.reshape(3, 2) * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full((2, 3), 2.0))

    def test_transpose(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 3))
        t = Tensor(x, requires_grad=True)
        w = rng.normal(size=(2, 4))
        (t.T @ w).sum().backward()
        np.testing.assert_allclose(
            t.grad, numeric_grad(lambda a: (a.T @ w).sum(), x), rtol=1e-5
        )

    def test_transpose_axes(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        t = Tensor(x, requires_grad=True)
        out = t.transpose(0, 2, 1)
        assert out.shape == (2, 4, 3)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(x.shape, 3.0))

    def test_getitem_int_array(self):
        x = np.arange(12.0).reshape(4, 3)
        t = Tensor(x, requires_grad=True)
        idx = np.asarray([1, 1, 2])
        t[idx].sum().backward()
        expected = np.zeros_like(x)
        expected[1] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_slices(self):
        x = np.arange(12.0).reshape(3, 4)
        t = Tensor(x, requires_grad=True)
        t[:, 1:3].sum().backward()
        expected = np.zeros_like(x)
        expected[:, 1:3] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestReductionGrads:
    def test_sum_axis(self):
        x = np.arange(6.0).reshape(2, 3)
        t = Tensor(x, requires_grad=True)
        (t.sum(axis=1) ** 2).sum().backward()
        expected = numeric_grad(lambda a: (a.sum(axis=1) ** 2).sum(), x)
        np.testing.assert_allclose(t.grad, expected, rtol=1e-5)

    def test_sum_keepdims(self):
        x = np.ones((2, 3))
        t = Tensor(x, requires_grad=True)
        t.sum(axis=1, keepdims=True).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    def test_mean(self):
        x = np.arange(4.0)
        t = Tensor(x, requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 0.25))

    def test_max(self):
        x = np.asarray([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.asarray([[0, 1, 0], [1, 0, 0]], dtype=float)
        np.testing.assert_allclose(t.grad, expected)

    def test_max_ties_split(self):
        x = np.asarray([[2.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestEngine:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            t.backward()

    def test_grad_accumulates_over_reuse(self):
        t = Tensor(np.asarray(2.0), requires_grad=True)
        (t * t).backward()  # d(t^2)/dt = 2t = 4
        np.testing.assert_allclose(t.grad, 4.0)

    def test_diamond_graph(self):
        t = Tensor(np.asarray(3.0), requires_grad=True)
        a = t * 2.0
        b = t + 1.0
        (a * b).backward()  # d(2t(t+1))/dt = 4t + 2
        np.testing.assert_allclose(t.grad, 14.0)

    def test_detach_blocks_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = (t.detach() * 2.0).sum()
        assert not out.requires_grad

    def test_no_grad_for_constants(self):
        a = as_tensor(np.ones(3))
        out = (a * 2.0).sum()
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.asarray(1.0), requires_grad=True)
        (t * 2.0).backward()
        t.zero_grad()
        assert t.grad is None


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
)
def test_property_composite_expression_gradcheck(seed, rows, cols):
    """Random composite expression: engine grad == finite differences."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(rows, cols))
    w = rng.normal(size=(cols, 2))

    def f(a):
        h = np.tanh(a @ w)
        s = 1.0 / (1.0 + np.exp(-h))
        return (s * s).mean()

    t = Tensor(x, requires_grad=True)
    s = ops.sigmoid(ops.tanh(t @ Tensor(w)))
    (s * s).mean().backward()
    np.testing.assert_allclose(
        t.grad, numeric_grad(f, x), rtol=1e-4, atol=1e-7
    )
