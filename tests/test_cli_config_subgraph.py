"""Tests for the CLI, grid search, and subgraph extraction."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.core.config import GridResult, grid_search
from repro.core.exceptions import ConfigError, GraphError
from repro.models.baselines import BPRMF


class TestCLI:
    def test_table_commands(self, capsys):
        for number, marker in ((1, "YAGO"), (2, "Notation"), (4, "movie")):
            assert main(["table", str(number)]) == 0
            assert marker in capsys.readouterr().out

    def test_table3_lists_methods(self, capsys):
        assert main(["table", "3"]) == 0
        out = capsys.readouterr().out
        assert "RippleNet" in out and "Implemented" in out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Avatar" in out and "Blood Diamond" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for scenario in ("movie", "book", "news", "poi"):
            assert scenario in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "Emb. (14):" in out
        assert "Path (15):" in out
        assert "Uni. (10):" in out

    def test_unknown_study(self):
        with pytest.raises(SystemExit):
            main(["study", "nope"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestGridSearch:
    def test_sorted_best_first(self, movie_dataset):
        results = grid_search(
            lambda dim: BPRMF(dim=dim, epochs=3, seed=0),
            movie_dataset,
            {"dim": [4, 8]},
            max_users=10,
            seed=0,
        )
        assert len(results) == 2
        assert results[0].score >= results[1].score
        assert isinstance(results[0], GridResult)

    def test_cartesian_product(self, movie_dataset):
        results = grid_search(
            lambda dim, lr: BPRMF(dim=dim, lr=lr, epochs=2, seed=0),
            movie_dataset,
            {"dim": [4, 8], "lr": [0.01, 0.05]},
            max_users=8,
            seed=0,
        )
        assert len(results) == 4
        seen = {tuple(sorted(r.params.items())) for r in results}
        assert len(seen) == 4

    def test_empty_grid(self, movie_dataset):
        with pytest.raises(ConfigError):
            grid_search(lambda: BPRMF(), movie_dataset, {})

    def test_bad_grid_entry(self, movie_dataset):
        with pytest.raises(ConfigError):
            grid_search(lambda dim: BPRMF(dim=dim), movie_dataset, {"dim": []})


class TestSubgraph:
    def test_induced_facts(self, tiny_kg):
        sub, mapping = tiny_kg.subgraph(np.asarray([0, 1, 2]))
        assert mapping.tolist() == [0, 1, 2]
        # Facts among {item0, item1, genre2}: both has_genre edges to genre2.
        assert sub.num_triples == 2
        assert sub.has_fact(0, 0, 2)
        assert sub.has_fact(1, 0, 2)

    def test_labels_and_types_carried(self, tiny_kg):
        sub, __ = tiny_kg.subgraph(np.asarray([1, 3]))
        assert sub.entity_label(0) == "item1"
        assert sub.entity_label(1) == "genre3"
        assert sub.type_name(sub.type_of(1)) == "genre"

    def test_duplicate_entities_deduped(self, tiny_kg):
        sub, mapping = tiny_kg.subgraph(np.asarray([2, 2, 0]))
        assert mapping.tolist() == [0, 2]
        assert sub.num_entities == 2

    def test_out_of_range(self, tiny_kg):
        with pytest.raises(GraphError):
            tiny_kg.subgraph(np.asarray([99]))

    def test_relations_preserved(self, tiny_kg):
        sub, __ = tiny_kg.subgraph(np.arange(6))
        assert sub.num_triples == tiny_kg.num_triples
        assert sub.relation_labels == tiny_kg.relation_labels


class TestReport:
    def test_build_report_fast(self, monkeypatch):
        """The fast report assembles all artifacts and study sections."""
        from repro.experiments import comparative
        from repro.experiments.report import build_report

        monkeypatch.setattr(
            comparative,
            "DEFAULT_DATA_KWARGS",
            dict(num_users=14, num_items=22, mean_interactions=6.0),
        )
        text = build_report(fast=True, seed=0)
        for marker in (
            "kgrec reproduction report",
            "Table 1",
            "Table 3",
            "Figure 1",
            "Study E1",
            "Study E3",
            "Study E4",
            "top2=True",
        ):
            assert marker in text

    def test_write_report(self, tmp_path, monkeypatch):
        from repro.experiments import comparative
        from repro.experiments.report import write_report

        monkeypatch.setattr(
            comparative,
            "DEFAULT_DATA_KWARGS",
            dict(num_users=14, num_items=22, mean_interactions=6.0),
        )
        path = write_report(tmp_path / "report.md", fast=True, seed=0)
        assert path.exists()
        assert "Figure 1" in path.read_text()
