"""Coverage for the training scaffold, rng helpers, and misc core APIs."""

import numpy as np
import pytest

from repro.autograd import nn
from repro.autograd.tensor import Tensor
from repro.core.exceptions import ConfigError, DataError
from repro.core.recommender import Explanation
from repro.core.rng import ensure_rng, spawn
from repro.models.common import GradientRecommender


class DotModel(GradientRecommender):
    """Minimal embedding-dot model for exercising the scaffold."""

    def _build(self, dataset, rng):
        self.user = nn.Embedding(dataset.num_users, self.dim, seed=rng)
        self.item = nn.Embedding(dataset.num_items, self.dim, seed=rng)

    def _score_batch(self, users, items):
        return (self.user(users) * self.item(items)).sum(axis=1)


class TestGradientScaffold:
    def test_loss_history_length(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=4, seed=0).fit(train)
        assert len(model.loss_history) == 4

    def test_bpr_loss_decreases(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=8, loss="bpr", seed=0).fit(train)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_bce_loss_decreases(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=8, loss="bce", num_negatives=2, seed=0).fit(train)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_invalid_loss(self):
        with pytest.raises(ConfigError):
            DotModel(loss="hinge")

    def test_invalid_dim(self):
        with pytest.raises(ConfigError):
            DotModel(dim=0)

    def test_empty_interactions_rejected(self, movie_dataset):
        from repro.core.interactions import InteractionMatrix

        empty = movie_dataset.with_interactions(
            InteractionMatrix.empty(movie_dataset.num_users, movie_dataset.num_items)
        )
        with pytest.raises(DataError):
            DotModel(epochs=1).fit(empty)

    def test_score_all_chunking_consistent(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=1, seed=0).fit(train)
        scores = model.score_all(0)
        manual = (
            model.item.weight.data @ model.user.weight.data[0]
        )
        np.testing.assert_allclose(scores, manual, rtol=1e-10)

    def test_parameters_registered(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=1, seed=0).fit(train)
        assert len(model.parameters()) == 2


class TestRngHelpers:
    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_from_int_deterministic(self):
        a = ensure_rng(42).random(3)
        b = ensure_rng(42).random(3)
        np.testing.assert_allclose(a, b)

    def test_spawn_independence(self):
        rng = ensure_rng(0)
        children = spawn(rng, 3)
        assert len(children) == 3
        streams = [c.random(5) for c in children]
        assert not np.allclose(streams[0], streams[1])

    def test_spawn_negative(self):
        with pytest.raises(ValueError):
            spawn(ensure_rng(0), -1)


class TestExplanationRendering:
    def test_render_without_kg(self):
        expl = Explanation(
            user_id=0, item_id=1, kind="path", score=0.5,
            entities=(0, 2, 1), relations=(0, 1),
        )
        text = expl.render()
        assert "e0" in text and "r1" in text

    def test_render_detail_only(self):
        expl = Explanation(
            user_id=0, item_id=1, kind="rule", score=0.5, detail="because rule 3"
        )
        assert expl.render() == "because rule 3"

    def test_render_fallback_without_detail(self):
        expl = Explanation(user_id=0, item_id=1, kind="similarity", score=0.25)
        assert "similarity" in expl.render()


class TestRecommendAPI:
    def test_recommend_k_larger_than_catalog(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=1, seed=0).fit(train)
        recs = model.recommend(0, k=10_000)
        assert recs.size <= train.num_items

    def test_recommend_include_seen(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=1, seed=0).fit(train)
        all_items = model.recommend(0, k=train.num_items, exclude_seen=False)
        assert all_items.size == train.num_items

    def test_predict_shape_mismatch(self, movie_split):
        train, __ = movie_split
        model = DotModel(epochs=1, seed=0).fit(train)
        with pytest.raises(DataError):
            model.predict(np.asarray([0, 1]), np.asarray([0]))
