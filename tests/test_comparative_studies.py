"""Smoke tests for every comparative study (E1-E8, E5b) at reduced scale.

The benches run the studies at full size with claim assertions; here each
study runs on a tiny world to cover its code path, row schema, and
determinism inside the normal test budget.
"""

import numpy as np
import pytest

from repro.experiments import comparative
from repro.experiments.harness import results_table


@pytest.fixture(autouse=True)
def tiny_world(monkeypatch):
    monkeypatch.setattr(
        comparative,
        "DEFAULT_DATA_KWARGS",
        dict(num_users=16, num_items=24, mean_interactions=6.0),
    )


def _names(results):
    return [r.model for r in results]


class TestPanels:
    def test_e1_embedding(self):
        results = comparative.study_embedding_methods(seed=0, epochs=2)
        assert "CKE" in _names(results) and "BPR-MF" in _names(results)
        for r in results:
            assert 0.0 <= r["AUC"] <= 1.0

    def test_e2_path(self):
        results = comparative.study_path_methods(seed=0, epochs=1)
        assert "HeteRec" in _names(results)
        assert all(np.isfinite(r["AUC"]) for r in results)

    def test_e3_unified(self):
        results = comparative.study_unified_methods(seed=0, epochs=2)
        assert "RippleNet" in _names(results)

    def test_e6_aggregators(self):
        results = comparative.study_aggregators(seed=0, epochs=2)
        assert len(results) == 4

    def test_results_render(self):
        results = comparative.study_aggregators(seed=0, epochs=1)
        text = results_table(results)
        assert "KGCN[sum]" in text


class TestSweeps:
    def test_e1b_signal_rows(self):
        rows = comparative.study_kg_signal_sweep(seed=0, signals=(1.0, 0.0), epochs=2)
        assert {r["kg_signal"] for r in rows} == {1.0, 0.0}
        assert {r["model"] for r in rows} == {"BPR-MF", "KGCN", "RCF"}

    def test_e2b_metapath_counts(self):
        rows = comparative.study_metapath_count(seed=0, counts=(1, 2))
        assert [r["num_metapaths"] for r in rows] == [1, 2]

    def test_e3b_hops(self):
        rows = comparative.study_hop_depth(seed=0, hops=(1,))
        assert all(r["hops"] == 1 for r in rows)
        assert len(rows) == 2  # RippleNet + KGCN

    def test_e4_cold_start(self):
        rows = comparative.study_cold_start(seed=0)
        assert {r["model"] for r in rows} == {"BPR-MF", "ItemKNN", "CKE", "KGCN", "CFKG"}
        for r in rows:
            assert 0.0 <= r["value"] <= 1.0

    def test_e4b_sparsity(self):
        rows = comparative.study_sparsity(seed=0, levels=(8.0, 4.0))
        assert {r["mean_interactions"] for r in rows} == {8.0, 4.0}

    def test_e5_link_prediction(self):
        rows = comparative.study_kge_link_prediction(seed=0, epochs=3)
        assert len(rows) == len(comparative.KGE_MODELS)
        for row in rows:
            assert 0.0 <= row["MRR"] <= 1.0

    def test_e5b_downstream(self):
        results = comparative.study_kge_downstream(
            seed=0, kge_models=("TransE",), epochs=2
        )
        assert _names(results) == ["CKE[TransE]", "CFKG[TransE]"]

    def test_e7_explainability(self):
        rows = comparative.study_explainability(seed=0)
        assert {r["model"] for r in rows} == {"CFKG", "RKGE", "KPRN", "PGPR", "KGAT"}
        for r in rows:
            assert r["validity"] <= r["coverage"] + 1e-9

    def test_e8_multitask(self):
        rows = comparative.study_multitask(
            seed=0, weights=(0.0, 1.0), epochs=2, num_seeds=1
        )
        assert {r["lambda"] for r in rows} == {0.0, 1.0}
        assert len(rows) == 4  # 2 models x 2 weights
