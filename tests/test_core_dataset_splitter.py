"""Tests for Dataset and the split protocols."""

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.interactions import InteractionMatrix
from repro.core.splitter import (
    cold_start_item_split,
    leave_one_out_split,
    random_split,
)
from repro.data import make_movie_dataset


class TestDataset:
    def test_describe(self, movie_dataset):
        info = movie_dataset.describe()
        assert info["num_users"] == 40
        assert info["has_kg"]
        assert info["kg_triples"] > 0

    def test_entity_alignment_roundtrip(self, movie_dataset):
        entity = movie_dataset.entity_of_item(3)
        assert movie_dataset.item_of_entity(entity) == 3

    def test_item_of_unknown_entity(self, movie_dataset):
        # Attribute entities are not items.
        assert movie_dataset.item_of_entity(
            movie_dataset.kg.num_entities - 1
        ) is None

    def test_alignment_shape_checked(self):
        mat = InteractionMatrix.empty(2, 3)
        with pytest.raises(DataError):
            Dataset(name="bad", interactions=mat, item_entities=np.asarray([0, 1]))

    def test_entity_of_item_without_kg(self):
        mat = InteractionMatrix.empty(2, 3)
        ds = Dataset(name="nokg", interactions=mat)
        with pytest.raises(DataError):
            ds.entity_of_item(0)

    def test_with_interactions_preserves_kg(self, movie_dataset):
        empty = InteractionMatrix.empty(
            movie_dataset.num_users, movie_dataset.num_items
        )
        replaced = movie_dataset.with_interactions(empty)
        assert replaced.kg is movie_dataset.kg
        assert replaced.interactions.nnz == 0

    def test_with_interactions_shape_mismatch(self, movie_dataset):
        with pytest.raises(DataError):
            movie_dataset.with_interactions(InteractionMatrix.empty(2, 2))

    def test_item_text_validation(self):
        mat = InteractionMatrix.empty(2, 3)
        with pytest.raises(DataError):
            Dataset(name="bad", interactions=mat, item_text=np.zeros((5, 4)))


class TestRandomSplit:
    def test_partition(self, movie_dataset):
        train, test = random_split(movie_dataset, seed=0)
        total = train.interactions.nnz + test.interactions.nnz
        assert total == movie_dataset.interactions.nnz
        train_pairs = set(map(tuple, train.interactions.pairs().tolist()))
        test_pairs = set(map(tuple, test.interactions.pairs().tolist()))
        assert train_pairs.isdisjoint(test_pairs)

    def test_fraction_respected(self, movie_dataset):
        train, test = random_split(movie_dataset, test_fraction=0.3, seed=1)
        frac = test.interactions.nnz / movie_dataset.interactions.nnz
        assert 0.2 < frac < 0.4

    def test_every_user_keeps_training_item(self, movie_dataset):
        train, __ = random_split(movie_dataset, seed=2)
        for user in range(movie_dataset.num_users):
            if movie_dataset.interactions.items_of(user).size >= 2:
                assert train.interactions.items_of(user).size >= 1

    def test_deterministic(self, movie_dataset):
        a = random_split(movie_dataset, seed=3)[1].interactions.pairs()
        b = random_split(movie_dataset, seed=3)[1].interactions.pairs()
        assert np.array_equal(a, b)

    def test_bad_fraction(self, movie_dataset):
        with pytest.raises(DataError):
            random_split(movie_dataset, test_fraction=1.5)

    def test_kg_shared(self, movie_dataset):
        train, test = random_split(movie_dataset, seed=0)
        assert train.kg is movie_dataset.kg
        assert test.kg is movie_dataset.kg


class TestLeaveOneOut:
    def test_one_test_item_per_eligible_user(self, movie_dataset):
        train, test = leave_one_out_split(movie_dataset, seed=0)
        for user in range(movie_dataset.num_users):
            original = movie_dataset.interactions.items_of(user).size
            held = test.interactions.items_of(user).size
            if original >= 2:
                assert held == 1
            else:
                assert held == 0

    def test_partition(self, movie_dataset):
        train, test = leave_one_out_split(movie_dataset, seed=0)
        assert (
            train.interactions.nnz + test.interactions.nnz
            == movie_dataset.interactions.nnz
        )


class TestColdStart:
    def test_cold_items_have_no_training_feedback(self, movie_dataset):
        train, test, cold = cold_start_item_split(movie_dataset, seed=0)
        degrees = train.interactions.item_degrees()
        assert (degrees[cold] == 0).all()

    def test_test_contains_only_cold(self, movie_dataset):
        __, test, cold = cold_start_item_split(movie_dataset, seed=0)
        cold_set = set(cold.tolist())
        for __u, items in test.interactions.iter_users():
            assert set(items.tolist()) <= cold_set

    def test_fraction(self, movie_dataset):
        __, __t, cold = cold_start_item_split(movie_dataset, cold_fraction=0.3, seed=1)
        interacted = (movie_dataset.interactions.item_degrees() > 0).sum()
        assert 0.15 < cold.size / interacted < 0.45

    def test_bad_fraction(self, movie_dataset):
        with pytest.raises(DataError):
            cold_start_item_split(movie_dataset, cold_fraction=0.0)


class TestGeneratorContract:
    def test_seed_determinism(self):
        a = make_movie_dataset(seed=11, num_users=10, num_items=20)
        b = make_movie_dataset(seed=11, num_users=10, num_items=20)
        assert np.array_equal(a.interactions.pairs(), b.interactions.pairs())
        assert np.array_equal(a.kg.triples(), b.kg.triples())

    def test_different_seeds_differ(self):
        a = make_movie_dataset(seed=1, num_users=10, num_items=20)
        b = make_movie_dataset(seed=2, num_users=10, num_items=20)
        assert not np.array_equal(a.interactions.pairs(), b.interactions.pairs())
