"""Unit and property tests for InteractionMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DataError
from repro.core.interactions import InteractionMatrix


def make(pairs, m=4, n=5, ratings=None):
    arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    if ratings is None:
        return InteractionMatrix.from_pairs(arr, m, n)
    return InteractionMatrix(arr[:, 0], arr[:, 1], m, n, ratings=np.asarray(ratings))


class TestConstruction:
    def test_basic_shape(self):
        mat = make([(0, 1), (1, 2)])
        assert mat.shape == (4, 5)
        assert mat.nnz == 2

    def test_empty(self):
        mat = InteractionMatrix.empty(3, 3)
        assert mat.nnz == 0
        assert mat.density == 0.0

    def test_duplicates_collapse(self):
        mat = make([(0, 1), (0, 1), (0, 1)])
        assert mat.nnz == 1

    def test_duplicate_keeps_last_rating(self):
        mat = make([(0, 1), (0, 1)], ratings=[2.0, 5.0])
        assert mat.ratings_of(0)[0] == 5.0

    def test_out_of_range_user(self):
        with pytest.raises(DataError):
            make([(9, 0)])

    def test_out_of_range_item(self):
        with pytest.raises(DataError):
            make([(0, 9)])

    def test_negative_id(self):
        with pytest.raises(DataError):
            make([(-1, 0)])

    def test_mismatched_arrays(self):
        with pytest.raises(DataError):
            InteractionMatrix(np.asarray([0, 1]), np.asarray([0]), 2, 2)

    def test_bad_shape_pairs(self):
        with pytest.raises(DataError):
            InteractionMatrix.from_pairs(np.zeros((2, 3), dtype=int), 2, 2)

    def test_zero_users_rejected(self):
        with pytest.raises(DataError):
            InteractionMatrix.empty(0, 3)


class TestAccess:
    def test_items_of_sorted(self):
        mat = make([(0, 4), (0, 1), (0, 2)])
        assert mat.items_of(0).tolist() == [1, 2, 4]

    def test_users_of(self):
        mat = make([(0, 1), (2, 1), (3, 1)])
        assert mat.users_of(1).tolist() == [0, 2, 3]

    def test_contains(self):
        mat = make([(0, 1)])
        assert mat.contains(0, 1)
        assert not mat.contains(0, 2)
        assert not mat.contains(1, 1)

    def test_degrees(self):
        mat = make([(0, 1), (0, 2), (1, 2)])
        assert mat.user_degrees().tolist() == [2, 1, 0, 0]
        assert mat.item_degrees().tolist() == [0, 1, 2, 0, 0]

    def test_pairs_roundtrip(self):
        pairs = [(0, 1), (1, 2), (3, 4)]
        mat = make(pairs)
        assert sorted(map(tuple, mat.pairs().tolist())) == sorted(pairs)

    def test_iter_users_skips_empty(self):
        mat = make([(0, 1)])
        users = [u for u, __ in mat.iter_users()]
        assert users == [0]

    def test_to_dense_matches(self):
        mat = make([(0, 1), (1, 0)])
        dense = mat.to_dense()
        assert dense[0, 1] == 1.0 and dense[1, 0] == 1.0
        assert dense.sum() == 2.0

    def test_user_out_of_range_access(self):
        mat = make([(0, 1)])
        with pytest.raises(DataError):
            mat.items_of(10)


class TestDerived:
    def test_binarize_drops_ratings(self):
        mat = make([(0, 1)], ratings=[4.0])
        assert mat.has_ratings
        assert not mat.binarize().has_ratings

    def test_filter_ratings(self):
        mat = make([(0, 1), (0, 2)], ratings=[5.0, 2.0])
        kept = mat.filter_ratings(4.0)
        assert kept.nnz == 1
        assert kept.contains(0, 1)

    def test_filter_requires_ratings(self):
        with pytest.raises(DataError):
            make([(0, 1)]).filter_ratings(3.0)


class TestSampling:
    def test_negatives_exclude_positives(self):
        mat = make([(0, 1), (0, 2)])
        negs = mat.sample_negative_items(0, 3, seed=0)
        assert set(negs.tolist()).isdisjoint({1, 2})

    def test_negatives_deterministic(self):
        mat = make([(0, 1)])
        a = mat.sample_negative_items(0, 4, seed=5)
        b = mat.sample_negative_items(0, 4, seed=5)
        assert a.tolist() == b.tolist()

    def test_bpr_triples_valid(self):
        mat = make([(0, 1), (1, 2), (2, 3)])
        users, pos, neg = mat.sample_bpr_triples(50, seed=1)
        for u, i, j in zip(users, pos, neg):
            assert mat.contains(int(u), int(i))
            assert not mat.contains(int(u), int(j))

    def test_bpr_empty_matrix(self):
        with pytest.raises(DataError):
            InteractionMatrix.empty(2, 2).sample_bpr_triples(1)

    def test_full_row_user(self):
        mat = InteractionMatrix.from_pairs([(0, 0), (0, 1)], 1, 2)
        with pytest.raises(DataError):
            mat.sample_negative_items(0, 1)


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 9)), min_size=1, max_size=40
    )
)
def test_property_degrees_sum_to_nnz(pairs):
    mat = InteractionMatrix.from_pairs(np.asarray(pairs), 8, 10)
    assert mat.user_degrees().sum() == mat.nnz
    assert mat.item_degrees().sum() == mat.nnz


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 9)), min_size=1, max_size=40
    )
)
def test_property_contains_consistent_with_pairs(pairs):
    mat = InteractionMatrix.from_pairs(np.asarray(pairs), 8, 10)
    observed = set(map(tuple, mat.pairs().tolist()))
    assert observed == set(map(tuple, pairs))
    for u, v in observed:
        assert mat.contains(u, v)


@settings(max_examples=30, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=20
    )
)
def test_property_dense_roundtrip(pairs):
    mat = InteractionMatrix.from_pairs(np.asarray(pairs), 6, 6)
    dense = mat.to_dense()
    assert dense.sum() == mat.nnz
    for u, v in set(pairs):
        assert dense[u, v] == 1.0
