"""Tests for the synthetic world model and scenario generators."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigError
from repro.data import (
    SCENARIO_SCHEMAS,
    TABLE1,
    TABLE4,
    AttributeSpec,
    ScenarioSchema,
    cross_domain,
    domain_specific,
    generate_dataset,
    make_movie_dataset,
    make_news_dataset,
    scenarios_list,
    stand_in_for,
)


class TestSchemaValidation:
    def test_needs_attributes(self):
        with pytest.raises(ConfigError):
            ScenarioSchema(scenario="x", item_type="i", attributes=())

    def test_needs_informative(self):
        with pytest.raises(ConfigError):
            ScenarioSchema(
                scenario="x",
                item_type="i",
                attributes=(AttributeSpec("a", "r", 3, informative=False),),
            )

    def test_duplicate_names(self):
        with pytest.raises(ConfigError):
            ScenarioSchema(
                scenario="x",
                item_type="i",
                attributes=(
                    AttributeSpec("a", "r1", 3),
                    AttributeSpec("a", "r2", 3),
                ),
            )


class TestGenerator:
    def test_shapes(self, movie_dataset):
        assert movie_dataset.num_users == 40
        assert movie_dataset.num_items == 60
        assert movie_dataset.item_entities.tolist() == list(range(60))

    def test_every_item_has_kg_links(self, movie_dataset):
        kg = movie_dataset.kg
        for item in range(movie_dataset.num_items):
            assert kg.store.outgoing(item).size > 0

    def test_every_user_has_interactions(self, movie_dataset):
        assert (movie_dataset.interactions.user_degrees() >= 2).all()

    def test_entity_types_cover_schema(self, movie_dataset):
        kg = movie_dataset.kg
        expected = ["movie", "genre", "actor", "director", "country"]
        assert kg.type_names == expected

    def test_attribute_links_exist(self, movie_dataset):
        kg = movie_dataset.kg
        born_in = kg.relation_id("born_in")
        assert kg.store.with_relation(born_in).size > 0

    def test_kg_signal_zero_decouples(self):
        """With kg_signal=0 the published links are random rewires."""
        faithful = make_movie_dataset(seed=0, num_users=20, num_items=40, kg_signal=1.0)
        garbage = make_movie_dataset(seed=0, num_users=20, num_items=40, kg_signal=0.0)
        # Same interactions (preference untouched)...
        assert np.array_equal(
            faithful.interactions.pairs(), garbage.interactions.pairs()
        )
        # ...but different published KGs.
        assert not np.array_equal(faithful.kg.triples(), garbage.kg.triples())

    def test_invalid_signal(self):
        with pytest.raises(ConfigError):
            make_movie_dataset(kg_signal=1.5)

    def test_too_small(self):
        with pytest.raises(ConfigError):
            generate_dataset(SCENARIO_SCHEMAS["movie"], num_users=1, num_items=2)

    def test_mean_interactions_scales(self):
        sparse = make_movie_dataset(seed=0, num_users=30, num_items=50, mean_interactions=5.0)
        dense = make_movie_dataset(seed=0, num_users=30, num_items=50, mean_interactions=20.0)
        assert dense.interactions.nnz > sparse.interactions.nnz * 2

    def test_kg_carries_preference_signal(self, movie_dataset):
        """Items sharing a genre should be co-liked more than random pairs.

        This is the generator property every KG-aware method relies on.
        """
        kg = movie_dataset.kg
        dense = movie_dataset.interactions.to_dense()
        co = dense.T @ dense
        genre_rel = kg.relation_id("has_genre")
        n = movie_dataset.num_items

        genre_of: dict[int, set] = {}
        for item in range(n):
            idx = kg.store.outgoing(item)
            genre_of[item] = {
                int(t)
                for r, t in zip(kg.store.relations[idx], kg.store.tails[idx])
                if r == genre_rel
            }
        shared, disjoint = [], []
        for i in range(n):
            for j in range(i + 1, n):
                (shared if genre_of[i] & genre_of[j] else disjoint).append(co[i, j])
        assert np.mean(shared) > np.mean(disjoint)


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIO_SCHEMAS))
    def test_each_scenario_generates(self, name):
        data = generate_dataset(
            SCENARIO_SCHEMAS[name], num_users=10, num_items=20, seed=0
        )
        assert data.num_items == 20
        assert data.kg is not None
        assert data.extra["scenario"] == name

    def test_news_has_text(self, news_dataset):
        assert news_dataset.item_text is not None
        assert news_dataset.item_text.shape == (40, 32)

    def test_movie_has_no_text(self, movie_dataset):
        assert movie_dataset.item_text is None


class TestCatalogs:
    def test_table1_has_eleven_kgs(self):
        assert len(TABLE1) == 11

    def test_table1_partition(self):
        assert len(cross_domain()) + len(domain_specific()) == len(TABLE1)
        assert {kg.name for kg in domain_specific()} == {"Bio2RDF", "KnowLife"}

    def test_table4_scenarios(self):
        assert scenarios_list() == [
            "movie", "book", "news", "product", "poi", "music", "social",
        ]

    def test_table4_has_twenty_datasets(self):
        assert len(TABLE4) == 20

    def test_stand_in_lookup(self):
        data = stand_in_for("MovieLens-1M", seed=0, num_users=10, num_items=20)
        assert data.extra["scenario"] == "movie"

    def test_stand_in_unknown(self):
        with pytest.raises(KeyError):
            stand_in_for("NotADataset")

    def test_every_entry_has_papers(self):
        for entry in TABLE4:
            assert entry.papers, entry.dataset


class TestExplicitRatings:
    def test_ratings_in_star_range(self):
        data = make_movie_dataset(
            seed=0, num_users=15, num_items=25, explicit_ratings=True
        )
        assert data.interactions.has_ratings
        for user in range(data.num_users):
            ratings = data.interactions.ratings_of(user)
            if ratings.size:
                assert ratings.min() >= 1.0 and ratings.max() <= 5.0

    def test_higher_preference_higher_stars(self):
        data = make_movie_dataset(
            seed=1, num_users=15, num_items=30, explicit_ratings=True
        )
        user_latent = data.extra["user_latent"]
        item_latent = data.extra["item_latent"]
        agreements = []
        for user in range(data.num_users):
            items = data.interactions.items_of(user)
            ratings = data.interactions.ratings_of(user)
            if items.size < 4:
                continue
            true_scores = item_latent[items] @ user_latent[user]
            agreements.append(np.corrcoef(true_scores, ratings)[0, 1])
        assert np.mean(agreements) > 0.3

    def test_filter_ratings_pipeline(self):
        """The survey's 'keep 5-star ratings as positives' preprocessing."""
        data = make_movie_dataset(
            seed=2, num_users=15, num_items=25, explicit_ratings=True
        )
        liked = data.interactions.filter_ratings(4.0)
        assert 0 < liked.nnz < data.interactions.nnz

    def test_implicit_default(self, movie_dataset):
        assert not movie_dataset.interactions.has_ratings
