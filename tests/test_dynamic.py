"""Tests for the dynamic-recommendation extension."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigError, DataError
from repro.extensions import RecencyKNN, make_dynamic_dataset, temporal_split


@pytest.fixture(scope="module")
def dynamic():
    return make_dynamic_dataset(
        num_users=30, num_items=50, num_periods=3, drift=1.0, seed=0
    )


class TestDynamicGenerator:
    def test_timestamps_cover_observed_pairs(self, dynamic):
        times = dynamic.extra["interaction_times"]
        dense = dynamic.interactions.to_dense()
        assert ((times >= 0) == (dense > 0)).all()

    def test_periods_in_range(self, dynamic):
        times = dynamic.extra["interaction_times"]
        observed = times[times >= 0]
        assert observed.min() == 0
        assert observed.max() == dynamic.extra["num_periods"] - 1

    def test_each_user_interacts_each_period(self, dynamic):
        times = dynamic.extra["interaction_times"]
        for user in range(dynamic.num_users):
            for period in range(dynamic.extra["num_periods"]):
                assert (times[user] == period).sum() > 0

    def test_drift_changes_period_preferences(self):
        """With drift=1, early and late interactions differ more than with 0."""

        def period_overlap(dataset):
            times = dataset.extra["interaction_times"]
            overlaps = []
            for user in range(dataset.num_users):
                first = set(np.flatnonzero(times[user] == 0).tolist())
                last_period = dataset.extra["num_periods"] - 1
                last = set(np.flatnonzero(times[user] == last_period).tolist())
                items = dataset.extra["item_latent"]
                if not first or not last:
                    continue
                a = items[list(first)].mean(axis=0)
                b = items[list(last)].mean(axis=0)
                overlaps.append(
                    float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))
                )
            return np.mean(overlaps)

        frozen = make_dynamic_dataset(
            num_users=25, num_items=40, drift=0.0, seed=1
        )
        drifted = make_dynamic_dataset(
            num_users=25, num_items=40, drift=1.0, seed=1
        )
        assert period_overlap(frozen) > period_overlap(drifted)

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_dynamic_dataset(num_periods=1)
        with pytest.raises(ConfigError):
            make_dynamic_dataset(drift=1.5)


class TestTemporalSplit:
    def test_partition_by_period(self, dynamic):
        train, test = temporal_split(dynamic)
        times = dynamic.extra["interaction_times"]
        last = times.max()
        for u, v in train.interactions.pairs():
            assert times[u, v] < last
        for u, v in test.interactions.pairs():
            assert times[u, v] == last

    def test_requires_times(self, movie_dataset):
        with pytest.raises(DataError):
            temporal_split(movie_dataset)


class TestRecencyKNN:
    def test_decay_one_matches_itemknn(self, dynamic):
        from repro.models.baselines import ItemKNN

        train, __ = temporal_split(dynamic)
        static = ItemKNN(num_neighbors=10).fit(train)
        recency = RecencyKNN(decay=1.0, num_neighbors=10).fit(train)
        for user in range(5):
            np.testing.assert_allclose(
                static.score_all(user), recency.score_all(user), rtol=1e-8
            )

    def test_recency_beats_static_under_drift(self):
        """The §6 claim: modeling dynamics helps when interests drift."""
        from repro.eval import Evaluator
        from repro.models.baselines import ItemKNN

        static_aucs, recency_aucs = [], []
        for seed in (0, 1, 2):
            data = make_dynamic_dataset(
                num_periods=4, interactions_per_period=6, drift=1.0, seed=seed
            )
            train, test = temporal_split(data)
            evaluator = Evaluator(train, test, seed=seed, max_users=40)
            static_aucs.append(evaluator.evaluate(ItemKNN().fit(train))["AUC"])
            recency_aucs.append(
                evaluator.evaluate(RecencyKNN(decay=0.3).fit(train))["AUC"]
            )
        assert np.mean(recency_aucs) > np.mean(static_aucs)

    def test_invalid_decay(self):
        with pytest.raises(ConfigError):
            RecencyKNN(decay=0.0)

    def test_requires_times(self, movie_dataset):
        with pytest.raises(DataError):
            RecencyKNN().fit(movie_dataset)
