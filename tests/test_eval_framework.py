"""Tests for the Evaluator, cold-start studies, explanations, significance."""

import numpy as np
import pytest

from repro.core.exceptions import EvaluationError
from repro.core.recommender import Explanation, Recommender
from repro.core.splitter import random_split
from repro.eval.coldstart import cold_start_study, sparsity_sweep
from repro.eval.evaluator import Evaluator
from repro.eval.explain import (
    explanation_fidelity,
    grounded_in_history,
    is_valid_explanation,
)
from repro.eval.significance import bootstrap_ci, paired_permutation_test
from repro.models.baselines import MostPopular, Random


class OracleModel(Recommender):
    """Scores items by the generator's true latent preference."""

    def fit(self, dataset):
        self._scores = dataset.extra["user_latent"] @ dataset.extra["item_latent"].T
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id):
        return self._scores[user_id]


class TestEvaluator:
    def test_requires_fitted(self, movie_split):
        train, test = movie_split
        with pytest.raises(EvaluationError):
            Evaluator(train, test).evaluate(Random())

    def test_metrics_present(self, movie_split):
        train, test = movie_split
        result = Evaluator(train, test, seed=0).evaluate(MostPopular().fit(train))
        for key in ("AUC", "Precision@5", "Recall@10", "NDCG@10", "HR@5", "MRR"):
            assert key in result.values

    def test_oracle_beats_random(self, movie_split):
        train, test = movie_split
        evaluator = Evaluator(train, test, seed=0)
        oracle = evaluator.evaluate(OracleModel().fit(train))
        random_result = evaluator.evaluate(Random(seed=0).fit(train))
        assert oracle["AUC"] > random_result["AUC"] + 0.1
        assert oracle["NDCG@10"] > random_result["NDCG@10"]

    def test_random_auc_near_half(self, movie_split):
        train, test = movie_split
        result = Evaluator(train, test, seed=0).evaluate(Random(seed=1).fit(train))
        assert 0.35 < result["AUC"] < 0.65

    def test_max_users_cap(self, movie_split):
        train, test = movie_split
        evaluator = Evaluator(train, test, max_users=5, seed=0)
        assert len(evaluator.users) == 5

    def test_shared_negatives_across_models(self, movie_split):
        train, test = movie_split
        evaluator = Evaluator(train, test, seed=0)
        # Two evaluations of the same model give identical results.
        model = MostPopular().fit(train)
        a = evaluator.evaluate(model)
        b = evaluator.evaluate(model)
        assert a.values == b.values

    def test_per_user_metric(self, movie_split):
        train, test = movie_split
        evaluator = Evaluator(train, test, seed=0)
        values = evaluator.per_user_metric(MostPopular().fit(train), "AUC")
        assert values.size > 0
        assert np.isfinite(values).all()

    def test_shape_mismatch_rejected(self, movie_dataset, tiny_dataset):
        with pytest.raises(EvaluationError):
            Evaluator(movie_dataset, tiny_dataset)

    def test_compare_panel(self, movie_split):
        train, test = movie_split
        evaluator = Evaluator(train, test, seed=0, max_users=10)
        results = evaluator.compare(
            {"pop": MostPopular(), "rand": Random(seed=0)}, fit=True
        )
        assert [r.model for r in results] == ["pop", "rand"]


class TestColdStart:
    def test_cold_start_rows(self, movie_dataset):
        rows = cold_start_study(
            movie_dataset,
            {"pop": lambda: MostPopular(), "oracle": lambda: OracleModel()},
            seed=0,
        )
        assert {r["model"] for r in rows} == {"pop", "oracle"}
        oracle_row = next(r for r in rows if r["model"] == "oracle")
        pop_row = next(r for r in rows if r["model"] == "pop")
        # Popularity has no signal on cold items (all have zero train count).
        assert oracle_row["value"] > pop_row["value"]

    def test_sparsity_sweep_shape(self):
        from repro.data import make_movie_dataset

        rows = sparsity_sweep(
            make_movie_dataset,
            {"pop": lambda: MostPopular()},
            mean_interactions=(10.0, 5.0),
            seed=0,
            num_users=20,
            num_items=30,
        )
        assert len(rows) == 2
        assert {r["mean_interactions"] for r in rows} == {10.0, 5.0}


class TestExplanations:
    def test_valid_path_detected(self, tiny_dataset):
        expl = Explanation(
            user_id=0, item_id=1, kind="path", score=1.0,
            entities=(0, 2, 1), relations=(0, 0),
        )
        assert is_valid_explanation(expl, tiny_dataset)

    def test_invalid_edge_rejected(self, tiny_dataset):
        expl = Explanation(
            user_id=0, item_id=1, kind="path", score=1.0,
            entities=(0, 5, 1), relations=(0, 1),  # 0 -has_genre-> actor5 ??
        )
        assert not is_valid_explanation(expl, tiny_dataset)

    def test_wrong_terminal_rejected(self, tiny_dataset):
        expl = Explanation(
            user_id=0, item_id=0, kind="path", score=1.0,
            entities=(0, 2, 1), relations=(0, 0),  # ends at item1, not item0
        )
        assert not is_valid_explanation(expl, tiny_dataset)

    def test_pathless_not_valid(self, tiny_dataset):
        expl = Explanation(user_id=0, item_id=1, kind="similarity", score=1.0)
        assert not is_valid_explanation(expl, tiny_dataset)

    def test_grounding(self, tiny_dataset):
        grounded = Explanation(
            user_id=1, item_id=0, kind="path", score=1.0,
            entities=(1, 2, 0), relations=(0, 0),  # starts at user1's item1
        )
        assert grounded_in_history(grounded, tiny_dataset)
        floating = Explanation(
            user_id=1, item_id=0, kind="path", score=1.0,
            entities=(4, 0), relations=(1,),  # starts at an actor
        )
        assert not grounded_in_history(floating, tiny_dataset)

    def test_path_length_invariant(self):
        with pytest.raises(Exception):
            Explanation(
                user_id=0, item_id=0, kind="path", score=0.0,
                entities=(0, 1), relations=(),
            )

    def test_fidelity_on_explaining_model(self, movie_split):
        from repro.models.embedding_based import CFKG

        train, __ = movie_split
        model = CFKG(epochs=10, seed=0).fit(train)
        report = explanation_fidelity(model, users=list(range(8)), k=3)
        assert 0.0 <= report["validity"] <= report["coverage"] <= 1.0

    def test_render_with_labels(self, tiny_dataset):
        expl = Explanation(
            user_id=0, item_id=1, kind="path", score=1.0,
            entities=(0, 2, 1), relations=(0, 0),
        )
        text = expl.render(tiny_dataset.kg)
        assert "item0" in text and "genre2" in text


class TestSignificance:
    def test_bootstrap_contains_mean(self):
        values = np.random.default_rng(0).normal(5.0, 1.0, 200)
        mean, low, high = bootstrap_ci(values, seed=0)
        assert low < mean < high
        assert abs(mean - 5.0) < 0.3

    def test_bootstrap_empty(self):
        with pytest.raises(EvaluationError):
            bootstrap_ci(np.asarray([]))

    def test_permutation_detects_shift(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.3, 100)
        b = rng.normal(0.0, 0.3, 100)
        assert paired_permutation_test(a, b, seed=0) < 0.01

    def test_permutation_null(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 100)
        b = a + rng.normal(0.0, 1e-3, 100)
        assert paired_permutation_test(a, b, seed=0) > 0.05

    def test_permutation_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            paired_permutation_test(np.ones(3), np.ones(4))
