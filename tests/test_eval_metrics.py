"""Metric correctness tests, including hand-computed cases and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import EvaluationError
from repro.eval.metrics import (
    auc,
    average_precision,
    hit_ratio_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)

RANKED = np.asarray([3, 1, 4, 1, 5, 9, 2, 6])


class TestAUC:
    def test_perfect_separation(self):
        assert auc([2.0, 3.0], [0.0, 1.0]) == 1.0

    def test_inverted(self):
        assert auc([0.0], [1.0, 2.0]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        value = auc(scores[:1000], scores[1000:])
        assert 0.45 < value < 0.55

    def test_ties_count_half(self):
        assert auc([1.0], [1.0]) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            auc([], [1.0])

    def test_matches_probability_interpretation(self):
        pos = np.asarray([3.0, 1.0])
        neg = np.asarray([2.0, 0.0])
        expected = np.mean([[1 if p > n else 0 for n in neg] for p in pos])
        assert auc(pos, neg) == pytest.approx(expected)


class TestTopK:
    def test_precision_hand_computed(self):
        assert precision_at_k(RANKED, {3, 4}, 3) == pytest.approx(2 / 3)

    def test_precision_counts_denominator_k(self):
        # Only 2 items ranked but k=5: denominator stays k.
        assert precision_at_k(np.asarray([1, 2]), {1}, 5) == pytest.approx(1 / 5)

    def test_recall_hand_computed(self):
        assert recall_at_k(RANKED, {3, 4, 7}, 3) == pytest.approx(2 / 3)

    def test_recall_needs_relevant(self):
        with pytest.raises(EvaluationError):
            recall_at_k(RANKED, set(), 3)

    def test_hit_ratio(self):
        assert hit_ratio_at_k(RANKED, {9}, 6) == 1.0
        assert hit_ratio_at_k(RANKED, {9}, 5) == 0.0

    def test_ndcg_perfect(self):
        assert ndcg_at_k(np.asarray([7, 8]), {7, 8}, 2) == pytest.approx(1.0)

    def test_ndcg_position_discount(self):
        first = ndcg_at_k(np.asarray([7, 0, 0]), {7}, 3)
        third = ndcg_at_k(np.asarray([0, 1, 7]), {7}, 3)
        assert first == pytest.approx(1.0)
        assert third == pytest.approx(1.0 / np.log2(4))

    def test_average_precision_hand_computed(self):
        # hits at positions 1 and 3 of k=3; two relevant items.
        ap = average_precision(np.asarray([5, 0, 6]), {5, 6}, 3)
        assert ap == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKED, {4}) == pytest.approx(1 / 3)
        assert reciprocal_rank(RANKED, {999}) == 0.0

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k(RANKED, {1}, 0)


@st.composite
def ranking_case(draw):
    n = draw(st.integers(3, 20))
    ranked = draw(
        st.permutations(list(range(n))).map(lambda p: np.asarray(p[: draw(st.integers(1, n))]))
    )
    relevant = draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    k = draw(st.integers(1, n))
    return ranked, relevant, k


@settings(max_examples=60, deadline=None)
@given(case=ranking_case())
def test_property_metric_bounds(case):
    ranked, relevant, k = case
    for fn in (precision_at_k, recall_at_k, ndcg_at_k, hit_ratio_at_k, average_precision):
        value = fn(ranked, relevant, k)
        assert 0.0 <= value <= 1.0
    assert 0.0 <= reciprocal_rank(ranked, relevant) <= 1.0


@settings(max_examples=40, deadline=None)
@given(case=ranking_case())
def test_property_hit_implies_positive_metrics(case):
    ranked, relevant, k = case
    hit = hit_ratio_at_k(ranked, relevant, k)
    if hit == 1.0:
        assert precision_at_k(ranked, relevant, k) > 0
        assert ndcg_at_k(ranked, relevant, k) > 0
    else:
        assert precision_at_k(ranked, relevant, k) == 0


@settings(max_examples=40, deadline=None)
@given(
    pos=st.lists(st.floats(-5, 5), min_size=1, max_size=20),
    neg=st.lists(st.floats(-5, 5), min_size=1, max_size=20),
)
def test_property_auc_antisymmetry(pos, neg):
    assert auc(pos, neg) == pytest.approx(1.0 - auc(neg, pos))
