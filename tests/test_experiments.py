"""Tests for table regeneration, Figure 1, and the experiment harness."""

import numpy as np
import pytest

from repro.experiments import figure1, tables
from repro.experiments.harness import results_table, run_panel
from repro.models.baselines import MostPopular, Random


class TestTables:
    def test_table1_contains_all_kgs(self):
        text = tables.table1()
        for name in ("YAGO", "Freebase", "DBpedia", "Satori", "CN-DBPedia",
                     "NELL", "Wikidata", "Bio2RDF", "KnowLife"):
            assert name in text

    def test_table2_resolves(self):
        text = tables.table2(resolve=True)
        assert "InteractionMatrix" in text

    def test_table3_has_39_method_rows(self):
        rows = tables.table3_rows()
        assert len(rows) == 39

    def test_table3_matches_survey_cells(self):
        text = tables.table3()
        assert "RippleNet" in text
        assert "CIKM" in text
        # CKE row: embedding-based with AE.
        cke_row = next(r for r in tables.table3_rows() if r[0] == "CKE")
        assert cke_row[3] == "v"  # Emb.
        assert cke_row[4] == ""  # Path
        headers_offset = 6  # name, venue, year, emb, path, uni
        from repro.core.registry import TECHNIQUES

        ae_col = headers_offset + TECHNIQUES.index("AE")
        assert cke_row[ae_col] == "v"

    def test_table4_has_all_scenarios(self):
        text = tables.table4()
        for scenario in ("movie", "book", "news", "product", "poi", "music", "social"):
            assert scenario in text

    def test_render_table_alignment(self):
        text = tables.render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines equal width


class TestFigure1:
    def test_dataset_structure(self):
        data = figure1.build_figure1_dataset()
        assert data.num_users == 2
        assert data.num_items == 5
        kg = data.kg
        assert kg.has_fact(
            kg.entity_id("Avatar"), kg.relation_id("has_genre"), kg.entity_id("Sci-Fi")
        )

    def test_reproduces_survey_claims(self):
        result = figure1.run_figure1()
        assert result["top2_matches_figure"]
        assert result["avatar_path_ok"]
        assert result["blood_diamond_path_ok"]

    def test_render_mentions_reasons(self):
        text = figure1.render_figure1()
        assert "Avatar" in text and "Blood Diamond" in text
        assert "Sci-Fi" in text and "Leonardo DiCaprio" in text


class TestHarness:
    def test_run_panel_shapes(self, movie_dataset):
        results = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular(), "rand": lambda: Random(seed=0)},
            max_users=10,
            seed=0,
        )
        assert [r.model for r in results] == ["pop", "rand"]
        for r in results:
            assert "AUC" in r.values

    def test_results_table_renders(self, movie_dataset):
        results = run_panel(
            movie_dataset, {"pop": lambda: MostPopular()}, max_users=10, seed=0
        )
        text = results_table(results, title="test")
        assert "pop" in text and "AUC" in text
