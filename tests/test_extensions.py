"""Tests for the Section 6 extensions: cross-domain PPGN and user side info."""

import numpy as np
import pytest

from repro.core.exceptions import DataError
from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.eval.evaluator import Evaluator
from repro.extensions import PPGN, attach_user_attributes, make_cross_domain_pair
from repro.kg.builders import ensure_user_item_graph
from repro.models.baselines import BPRMF


class TestCrossDomainData:
    def test_shared_users(self):
        source, target = make_cross_domain_pair(num_users=20, seed=0)
        assert source.num_users == target.num_users == 20
        np.testing.assert_allclose(
            source.extra["user_latent"], target.extra["user_latent"]
        )

    def test_density_asymmetry(self):
        source, target = make_cross_domain_pair(num_users=30, seed=0)
        assert source.interactions.density > target.interactions.density

    def test_domains_differ(self):
        source, target = make_cross_domain_pair(num_users=20, seed=0)
        assert source.extra["scenario"] == "movie"
        assert target.extra["scenario"] == "book"


class TestPPGN:
    def test_transfer_beats_target_only(self):
        """The cross-domain claim: propagation from a dense source domain
        improves ranking in the sparse target domain."""
        source, target = make_cross_domain_pair(
            num_users=50, source_interactions=22.0, target_interactions=4.0, seed=3
        )
        train, test = random_split(target, seed=3)
        evaluator = Evaluator(train, test, seed=3, max_users=30)
        ppgn = evaluator.evaluate(
            PPGN(source, epochs=20, seed=3).fit(train), name="PPGN"
        )
        bpr = evaluator.evaluate(BPRMF(epochs=25, seed=3).fit(train), name="BPR")
        assert ppgn["AUC"] > bpr["AUC"]

    def test_user_set_mismatch_rejected(self):
        source, __ = make_cross_domain_pair(num_users=10, seed=0)
        other = make_movie_dataset(seed=0, num_users=12, num_items=20)
        with pytest.raises(DataError):
            PPGN(source, epochs=1, seed=0).fit(other)

    def test_score_all_matches_batch(self):
        source, target = make_cross_domain_pair(num_users=15, seed=1)
        model = PPGN(source, epochs=2, seed=1).fit(target)
        fast = model.score_all(0)
        items = np.arange(target.num_items)
        slow = model._score_batch(np.zeros(items.size, dtype=np.int64), items).numpy()
        np.testing.assert_allclose(fast, slow, rtol=1e-8)


class TestUserSideInformation:
    @pytest.fixture(scope="class")
    def enriched(self):
        data = make_movie_dataset(seed=4, num_users=30, num_items=50)
        lifted = ensure_user_item_graph(data)
        return lifted, attach_user_attributes(lifted, num_attributes=6, seed=4)

    def test_one_attribute_per_user(self, enriched):
        lifted, demo = enriched
        rel = demo.extra["demographic_relation"]
        for user_entity in demo.user_entities:
            out = [
                r for r, __ in demo.kg.neighbors(int(user_entity), undirected=False)
            ]
            assert out.count(rel) == 1

    def test_types_extended(self, enriched):
        __, demo = enriched
        assert "demographic" in demo.kg.type_names

    def test_taste_correlation(self, enriched):
        """With signal=1, users sharing a dominant factor share demographics."""
        __, demo = enriched
        rel = demo.extra["demographic_relation"]
        latent = demo.extra["user_latent"]
        demo_of = {}
        for user, user_entity in enumerate(demo.user_entities):
            for r, t in demo.kg.neighbors(int(user_entity), undirected=False):
                if r == rel:
                    demo_of[user] = t
        for a in range(len(demo.user_entities)):
            for b in range(a + 1, len(demo.user_entities)):
                if np.argmax(latent[a]) == np.argmax(latent[b]):
                    assert demo_of[a] == demo_of[b]

    def test_signal_validation(self, enriched):
        lifted, __ = enriched
        with pytest.raises(DataError):
            attach_user_attributes(lifted, signal=2.0)

    def test_requires_lifted(self):
        data = make_movie_dataset(seed=0, num_users=10, num_items=20)
        with pytest.raises(DataError):
            attach_user_attributes(data)

    def test_models_run_on_enriched_graph(self, enriched):
        """KGAT consumes the demographic-enriched graph without re-lifting."""
        from repro.models.unified import KGAT

        __, demo = enriched
        model = KGAT(epochs=1, pretrain_epochs=2, seed=0).fit(demo)
        # The model must have used the enriched graph as-is.
        assert model._lifted.kg.num_entities == demo.kg.num_entities
        assert np.isfinite(model.score_all(0)).all()
