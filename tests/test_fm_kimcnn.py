"""Unit tests for FMCore and the batched Kim-CNN encoder."""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.rng import ensure_rng
from repro.models.baselines.fm import FMCore
from repro.models.embedding_based.dkn import BatchedKimCNN


class TestFMCore:
    def test_raw_score_formula(self):
        """score = bias + <w, x> + sum_{i<j} <v_i, v_j> x_i x_j."""
        core = FMCore(num_features=4, dim=3, seed=0)
        core.bias = 0.5
        rng = np.random.default_rng(1)
        core.linear[:] = rng.normal(size=4)
        core.factors[:] = rng.normal(size=(4, 3))

        indices = np.asarray([0, 2, 3])
        values = np.asarray([1.0, 2.0, -1.0])
        expected = core.bias + core.linear[indices] @ values
        for a in range(3):
            for b in range(a + 1, 3):
                expected += (
                    core.factors[indices[a]] @ core.factors[indices[b]]
                ) * values[a] * values[b]
        assert core.raw_score(indices, values) == pytest.approx(expected)

    def test_sgd_reduces_loss(self):
        core = FMCore(num_features=6, dim=2, seed=0)
        indices = np.asarray([0, 3])
        values = np.ones(2)
        first = core.sgd_step(indices, values, 1.0, lr=0.1, reg=0.0)
        for __ in range(60):
            last = core.sgd_step(indices, values, 1.0, lr=0.1, reg=0.0)
        assert last < first

    def test_gradient_clipping_keeps_finite(self):
        """Huge dense features must not blow the factors up."""
        core = FMCore(num_features=8, dim=4, seed=0)
        indices = np.arange(8)
        values = np.full(8, 50.0)
        for __ in range(20):
            core.sgd_step(indices, values, 1.0, lr=0.5, reg=0.0)
        assert np.isfinite(core.factors).all()
        assert np.isfinite(core.raw_score(indices, values))


class TestBatchedKimCNN:
    def test_matches_manual_convolution(self):
        rng = ensure_rng(0)
        cnn = BatchedKimCNN(in_dim=3, filters=2, kernel_size=2, seed=rng)
        x = np.random.default_rng(1).normal(size=(2, 5, 3))
        out = cnn(Tensor(x)).numpy()

        w = cnn.weight.data  # (k*in, F)
        b = cnn.bias.data
        for n in range(2):
            windows = np.stack(
                [x[n, i : i + 2].reshape(-1) for i in range(4)]
            )  # (P, k*in)
            conv = np.maximum(windows @ w + b, 0.0)
            expected = conv.max(axis=0)
            np.testing.assert_allclose(out[n], expected, rtol=1e-10)

    def test_gradient_flows(self):
        cnn = BatchedKimCNN(in_dim=2, filters=3, kernel_size=2, seed=0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4, 2)), requires_grad=True)
        cnn(x).sum().backward()
        assert x.grad is not None
        assert cnn.weight.grad is not None

    def test_output_shape(self):
        cnn = BatchedKimCNN(in_dim=4, filters=6, kernel_size=3, seed=0)
        out = cnn(Tensor(np.zeros((5, 7, 4))))
        assert out.shape == (5, 6)
