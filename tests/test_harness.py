"""Tests for the experiment harness itself."""

import numpy as np
import pytest

from repro.experiments.harness import results_table, run_panel
from repro.models.baselines import BPRMF, MostPopular


class TestRunPanel:
    def test_deterministic_across_invocations(self, movie_dataset):
        factories = {"bpr": lambda: BPRMF(epochs=2, seed=0)}
        a = run_panel(movie_dataset, factories, max_users=8, seed=1)
        b = run_panel(movie_dataset, factories, max_users=8, seed=1)
        assert a[0].values == b[0].values

    def test_models_share_the_split(self, movie_dataset):
        """Both models must be evaluated on identical users/negatives."""
        results = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular(), "pop2": lambda: MostPopular()},
            max_users=8,
            seed=0,
        )
        assert results[0].values == results[1].values
        assert results[0].num_users == results[1].num_users

    def test_custom_k_values(self, movie_dataset):
        results = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular()},
            k_values=(3,),
            max_users=8,
            seed=0,
        )
        assert "NDCG@3" in results[0].values
        assert "NDCG@10" not in results[0].values


class TestResultsTable:
    def test_missing_column_renders_nan(self, movie_dataset):
        results = run_panel(
            movie_dataset, {"pop": lambda: MostPopular()}, max_users=8, seed=0
        )
        text = results_table(results, columns=("AUC", "NotAMetric"))
        assert "nan" in text

    def test_row_method(self, movie_dataset):
        results = run_panel(
            movie_dataset, {"pop": lambda: MostPopular()}, max_users=8, seed=0
        )
        row = results[0].row(["AUC", "MRR"])
        assert len(row) == 2
        assert row[0] == results[0]["AUC"]
