"""End-to-end integration tests: full pipelines across subsystems.

These assert the *claims* the benchmark studies rely on, at reduced scale:
C1 (KG methods beat chance and approach/beat CF), C2 (cold-start gap),
C4 (explanations are valid paths).
"""

import numpy as np
import pytest

from repro.core.splitter import cold_start_item_split, random_split
from repro.data import make_movie_dataset
from repro.eval.evaluator import Evaluator
from repro.eval.explain import explanation_fidelity
from repro.eval.metrics import auc
from repro.models.baselines import BPRMF, MostPopular, Random
from repro.models.embedding_based import CFKG
from repro.models.path_based import HeteRec
from repro.models.unified import KGCN


@pytest.fixture(scope="module")
def data():
    return make_movie_dataset(seed=2, num_users=60, num_items=90)


@pytest.fixture(scope="module")
def split(data):
    return random_split(data, seed=2)


class TestWarmStartPipeline:
    def test_kg_models_beat_random(self, split):
        train, test = split
        evaluator = Evaluator(train, test, seed=2, max_users=30)
        random_auc = evaluator.evaluate(Random(seed=0).fit(train))["AUC"]
        for model in (
            KGCN(epochs=15, num_negatives=2, seed=0),
            HeteRec(seed=0),
            CFKG(epochs=15, seed=0),
        ):
            result = evaluator.evaluate(model.fit(train))
            assert result["AUC"] > random_auc + 0.05, type(model).__name__

    def test_path_diffusion_beats_popularity(self, split):
        train, test = split
        evaluator = Evaluator(train, test, seed=2, max_users=30)
        pop = evaluator.evaluate(MostPopular().fit(train))
        heterec = evaluator.evaluate(HeteRec(seed=0).fit(train))
        assert heterec["AUC"] > pop["AUC"]


class TestColdStartPipeline:
    def test_kg_model_beats_cf_on_cold_items(self, data):
        """C2: with zero training feedback, CF is blind; the KG is not."""
        train, test, cold = cold_start_item_split(data, cold_fraction=0.25, seed=2)
        cold_set = set(cold.tolist())
        rng = np.random.default_rng(2)

        cf = BPRMF(epochs=20, seed=0).fit(train)
        kg = KGCN(epochs=20, num_negatives=2, seed=0).fit(train)

        def cold_auc(model):
            values = []
            for user in range(data.num_users):
                positives = [
                    int(v) for v in test.interactions.items_of(user) if int(v) in cold_set
                ]
                if not positives:
                    continue
                pool = [v for v in cold_set if v not in positives]
                negs = rng.choice(np.asarray(pool), size=min(20, len(pool)), replace=False)
                scores = model.score_all(user)
                values.append(auc(scores[positives], scores[negs]))
            return float(np.mean(values))

        kg_auc = cold_auc(kg)
        cf_auc = cold_auc(cf)
        # CF is blind among cold items (all have zero training feedback);
        # the KG model separates them through shared attributes.
        assert kg_auc > cf_auc
        assert kg_auc > 0.52


class TestExplainabilityPipeline:
    def test_cfkg_explanations_fidelity(self, split):
        train, __ = split
        model = CFKG(epochs=15, seed=0).fit(train)
        report = explanation_fidelity(model, users=list(range(10)), k=5)
        assert report["validity"] > 0.3
        assert report["mean_path_length"] >= 1.0


class TestCrossScenario:
    @pytest.mark.parametrize("maker", ["make_book_dataset", "make_poi_dataset"])
    def test_pipeline_runs_on_other_scenarios(self, maker):
        import repro.data as data_mod

        dataset = getattr(data_mod, maker)(seed=0, num_users=20, num_items=30)
        train, test = random_split(dataset, seed=0)
        model = KGCN(epochs=5, num_negatives=2, seed=0).fit(train)
        result = Evaluator(train, test, seed=0, max_users=10).evaluate(model)
        assert np.isfinite(result["AUC"])
