"""Serialization round-trips and degenerate-input edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import load_dataset, save_dataset
from repro.core.dataset import Dataset
from repro.core.exceptions import DataError
from repro.core.interactions import InteractionMatrix
from repro.data import make_movie_dataset, make_news_dataset


class TestDatasetIO:
    def test_roundtrip_movie(self, tmp_path):
        original = make_movie_dataset(seed=0, num_users=12, num_items=20)
        path = tmp_path / "movie.npz"
        save_dataset(original, path)
        restored = load_dataset(path)

        assert restored.name == original.name
        assert np.array_equal(
            restored.interactions.pairs(), original.interactions.pairs()
        )
        assert np.array_equal(restored.kg.triples(), original.kg.triples())
        assert restored.kg.entity_labels == original.kg.entity_labels
        assert restored.kg.type_names == original.kg.type_names
        assert np.array_equal(restored.item_entities, original.item_entities)
        assert restored.extra["scenario"] == "movie"

    def test_roundtrip_preserves_latent_arrays(self, tmp_path):
        original = make_movie_dataset(seed=1, num_users=10, num_items=15)
        path = tmp_path / "w.npz"
        save_dataset(original, path)
        restored = load_dataset(path)
        np.testing.assert_allclose(
            restored.extra["user_latent"], original.extra["user_latent"]
        )

    def test_roundtrip_item_text(self, tmp_path):
        original = make_news_dataset(seed=0, num_users=8, num_items=12)
        path = tmp_path / "news.npz"
        save_dataset(original, path)
        restored = load_dataset(path)
        np.testing.assert_allclose(restored.item_text, original.item_text)

    def test_roundtrip_without_kg(self, tmp_path):
        plain = Dataset(
            name="plain",
            interactions=InteractionMatrix.from_pairs([(0, 1), (1, 0)], 2, 2),
        )
        path = tmp_path / "plain.npz"
        save_dataset(plain, path)
        restored = load_dataset(path)
        assert restored.kg is None
        assert restored.interactions.nnz == 2

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DataError):
            load_dataset(path)

    def test_not_a_zip_raises_data_error(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(DataError):
            load_dataset(path)

    def test_truncated_archive_raises_data_error(self, tmp_path):
        original = make_movie_dataset(seed=0, num_users=10, num_items=15)
        path = tmp_path / "full.npz"
        save_dataset(original, path)
        blob = path.read_bytes()
        truncated = tmp_path / "cut.npz"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(DataError):
            load_dataset(truncated)

    def test_version_mismatch_raises_data_error(self, tmp_path):
        import json

        path = tmp_path / "future.npz"
        meta = {"version": 999, "name": "x", "extra": {},
                "num_users": 1, "num_items": 1}
        np.savez(
            path,
            interaction_pairs=np.zeros((1, 2), dtype=np.int64),
            __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        with pytest.raises(DataError, match="version"):
            load_dataset(path)

    def test_corrupt_meta_json_raises_data_error(self, tmp_path):
        path = tmp_path / "badmeta.npz"
        np.savez(
            path,
            interaction_pairs=np.zeros((1, 2), dtype=np.int64),
            __meta__=np.frombuffer(b"{not json", dtype=np.uint8),
        )
        with pytest.raises(DataError):
            load_dataset(path)

    def test_missing_array_raises_data_error(self, tmp_path):
        import json

        path = tmp_path / "noarrays.npz"
        meta = {"version": 1, "name": "x", "extra": {},
                "num_users": 1, "num_items": 1}
        np.savez(
            path,
            __meta__=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
        )
        with pytest.raises(DataError):
            load_dataset(path)

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npz")

    def test_restored_dataset_trains_models(self, tmp_path):
        from repro.core.splitter import random_split
        from repro.models.unified import KGCN

        original = make_movie_dataset(seed=2, num_users=12, num_items=20)
        path = tmp_path / "train.npz"
        save_dataset(original, path)
        restored = load_dataset(path)
        train, __ = random_split(restored, seed=2)
        model = KGCN(epochs=1, num_neighbors=4, seed=0).fit(train)
        assert np.isfinite(model.score_all(0)).all()


class TestAlignmentValidation:
    def test_unaligned_items_rejected_by_kg_models(self, tiny_kg):
        from repro.models.unified import RippleNet

        broken = Dataset(
            name="broken",
            interactions=InteractionMatrix.from_pairs([(0, 0), (1, 1)], 2, 2),
            kg=tiny_kg,
            item_entities=np.asarray([0, -1]),  # item 1 unaligned
        )
        with pytest.raises(DataError, match="aligned"):
            RippleNet(epochs=1).fit(broken)

    def test_missing_alignment_rejected(self, tiny_kg):
        from repro.models.unified import KGCN

        broken = Dataset(
            name="broken",
            interactions=InteractionMatrix.from_pairs([(0, 0), (1, 1)], 2, 2),
            kg=tiny_kg,
        )
        with pytest.raises(DataError):
            KGCN(epochs=1).fit(broken)


class TestDegenerateInputs:
    def test_user_with_no_interactions_scores(self, tiny_kg):
        """Models must score users with empty history without crashing."""
        from repro.models.baselines import MostPopular
        from repro.models.embedding_based import SED

        data = Dataset(
            name="sparse-user",
            interactions=InteractionMatrix.from_pairs([(0, 0), (0, 1)], 3, 2),
            kg=tiny_kg,
            item_entities=np.asarray([0, 1]),
        )
        for model in (MostPopular(), SED()):
            model.fit(data)
            scores = model.score_all(2)  # user 2 has no history
            assert scores.shape == (2,)
            assert np.isfinite(scores).all()

    def test_single_relation_graph_metapaths(self):
        """Meta-path selection must survive a one-relation KG."""
        from repro.data import AttributeSpec, ScenarioSchema, generate_dataset
        from repro.models.path_based import HeteRec

        schema = ScenarioSchema(
            scenario="mono",
            item_type="thing",
            attributes=(AttributeSpec("tag", "tagged", count=6, per_item=(1, 2)),),
        )
        data = generate_dataset(schema, num_users=8, num_items=12, seed=0)
        model = HeteRec(theta_epochs=2, nmf_iterations=10, seed=0).fit(data)
        assert np.isfinite(model.score_all(0)).all()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 50))
def test_property_io_roundtrip_random_worlds(tmp_path_factory, seed):
    original = make_movie_dataset(seed=seed, num_users=6, num_items=10)
    path = tmp_path_factory.mktemp("io") / f"w{seed}.npz"
    save_dataset(original, path)
    restored = load_dataset(path)
    assert np.array_equal(
        restored.interactions.pairs(), original.interactions.pairs()
    )
    assert np.array_equal(restored.kg.triples(), original.kg.triples())
