"""Tests for meta-paths, PathSim, path enumeration, and the network schema."""

import numpy as np
import pytest

from repro.core.exceptions import GraphError
from repro.kg.hin import NetworkSchema
from repro.kg.metapath import (
    MetaGraph,
    MetaPath,
    Path,
    enumerate_paths,
    metagraph_adjacency,
    metapath_adjacency,
    pathcount_similarity,
    pathsim_matrix,
)

IGI = MetaPath((0, 1, 0), (0, 0), name="item-genre-item")
IAI = MetaPath((0, 2, 0), (1, 1), name="item-actor-item")


class TestMetaPath:
    def test_length(self):
        assert IGI.length == 2

    def test_symmetry(self):
        assert IGI.is_symmetric
        assert not MetaPath((0, 1), (0,)).is_symmetric

    def test_validation(self):
        with pytest.raises(GraphError):
            MetaPath((0, 1), (0, 1))

    def test_describe(self, tiny_kg):
        text = IGI.describe(tiny_kg)
        assert "item" in text and "has_genre" in text

    def test_describe_untyped(self):
        assert "T0" in IGI.describe()


class TestAdjacency:
    def test_counts(self, tiny_kg):
        m = metapath_adjacency(tiny_kg, IGI)
        # Both items share genre2; item1 additionally has genre3.
        assert m[0, 1] == 1
        assert m[1, 0] == 1
        assert m[0, 0] == 1
        assert m[1, 1] == 2

    def test_requires_types(self, tiny_kg):
        from repro.kg.graph import KnowledgeGraph

        untyped = KnowledgeGraph(tiny_kg.store)
        with pytest.raises(GraphError):
            metapath_adjacency(untyped, IGI)

    def test_actor_path_no_sharing(self, tiny_kg):
        m = metapath_adjacency(tiny_kg, IAI)
        assert m[0, 1] == 0  # items have distinct actors


class TestPathSim:
    def test_range_and_diagonal(self, tiny_kg):
        s = pathsim_matrix(tiny_kg, IGI).toarray()
        items = [0, 1]
        for i in items:
            assert s[i, i] == pytest.approx(1.0)
        assert 0.0 <= s[0, 1] <= 1.0

    def test_symmetry(self, tiny_kg):
        s = pathsim_matrix(tiny_kg, IGI).toarray()
        np.testing.assert_allclose(s, s.T)

    def test_formula(self, tiny_kg):
        s = pathsim_matrix(tiny_kg, IGI).toarray()
        # Eq. 12: 2*1 / (1 + 2)
        assert s[0, 1] == pytest.approx(2.0 / 3.0)

    def test_requires_symmetric_path(self, tiny_kg):
        with pytest.raises(GraphError):
            pathsim_matrix(tiny_kg, MetaPath((0, 1), (0,)))

    def test_pathcount_row_normalized(self, tiny_kg):
        m = pathcount_similarity(tiny_kg, IGI).toarray()
        sums = m.sum(axis=1)
        for row in range(2):
            assert sums[row] == pytest.approx(1.0)


class TestMetaGraph:
    def test_validation_endpoint_mismatch(self):
        with pytest.raises(GraphError):
            MetaGraph(paths=(IGI, MetaPath((0, 1, 1), (0, 0))))

    def test_hadamard_and_semantics(self, tiny_kg):
        mg = MetaGraph(paths=(IGI, IAI), combine="hadamard")
        m = metagraph_adjacency(tiny_kg, mg).toarray()
        # Items share a genre but no actor -> AND gives 0.
        assert m[0, 1] == 0

    def test_sum_or_semantics(self, tiny_kg):
        mg = MetaGraph(paths=(IGI, IAI), combine="sum")
        m = metagraph_adjacency(tiny_kg, mg).toarray()
        assert m[0, 1] == 1

    def test_empty_paths(self):
        with pytest.raises(GraphError):
            MetaGraph(paths=())


class TestEnumeratePaths:
    def test_finds_genre_bridge(self, tiny_kg):
        paths = enumerate_paths(tiny_kg, 0, 1, max_length=2)
        assert any(p.entities == (0, 2, 1) for p in paths)

    def test_simple_paths_only(self, tiny_kg):
        for p in enumerate_paths(tiny_kg, 0, 1, max_length=4, max_paths=100):
            assert len(set(p.entities)) == len(p.entities)

    def test_max_paths_cap(self, tiny_kg):
        paths = enumerate_paths(tiny_kg, 0, 1, max_length=4, max_paths=1)
        assert len(paths) == 1

    def test_length_bound(self, tiny_kg):
        for p in enumerate_paths(tiny_kg, 0, 1, max_length=2, max_paths=50):
            assert p.length <= 2

    def test_no_path(self, tiny_kg):
        # actor4 and actor5 connect only through items (length 3+).
        assert enumerate_paths(tiny_kg, 4, 5, max_length=1) == []

    def test_invalid_length(self, tiny_kg):
        with pytest.raises(GraphError):
            enumerate_paths(tiny_kg, 0, 1, max_length=0)

    def test_path_render(self, tiny_kg):
        p = Path((0, 2, 1), (0, 0))
        text = p.render(tiny_kg)
        assert "item0" in text and "genre2" in text and "item1" in text


class TestNetworkSchema:
    def test_signatures(self, tiny_kg):
        schema = NetworkSchema(tiny_kg)
        assert (0, 0, 1) in schema.signatures  # item -has_genre-> genre
        assert schema.allows(1, 0, 0)  # reversed direction allowed

    def test_validate_good_path(self, tiny_kg):
        NetworkSchema(tiny_kg).validate(IGI)

    def test_validate_bad_path(self, tiny_kg):
        bad = MetaPath((0, 2, 0), (0, 0))  # genre relation to actor type
        with pytest.raises(GraphError):
            NetworkSchema(tiny_kg).validate(bad)

    def test_enumerate_symmetric_item_paths(self, tiny_kg):
        schema = NetworkSchema(tiny_kg)
        paths = schema.enumerate_metapaths(0, 0, max_length=2)
        two_step = [p for p in paths if p.length == 2]
        assert len(two_step) == 2  # via genre and via actor
        for p in two_step:
            schema.validate(p)

    def test_untyped_rejected(self, tiny_kg):
        from repro.kg.graph import KnowledgeGraph

        with pytest.raises(GraphError):
            NetworkSchema(KnowledgeGraph(tiny_kg.store))

    def test_describe(self, tiny_kg):
        lines = NetworkSchema(tiny_kg).describe()
        assert any("has_genre" in line for line in lines)
