"""Tests for ripple sets, neighbor sampling, graph lifting, and walks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import GraphError
from repro.kg.builders import build_user_item_graph
from repro.kg.ripple import entity_ripple_sets, relevant_entities, user_ripple_sets
from repro.kg.sampling import NeighborCache, corrupt_batch
from repro.kg.triples import TripleStore
from repro.kg.walks import metapath_walks, train_sgns, uniform_walks
from repro.kg.metapath import MetaPath


class TestRippleSets:
    def test_one_hop_matches_definition(self, tiny_kg):
        # E^1 from item0: tails of facts with head item0.
        layers = relevant_entities(tiny_kg, np.asarray([0]), hops=1)
        assert set(layers[0].tolist()) == {2, 4}

    def test_two_hop_empty_when_tails_terminal(self, tiny_kg):
        layers = relevant_entities(tiny_kg, np.asarray([0]), hops=2)
        # genre/actor entities have no outgoing facts.
        assert layers[1].size == 0

    def test_user_ripple_sets_heads_are_seeds(self, tiny_kg):
        sets = user_ripple_sets(tiny_kg, np.asarray([0, 1]), hops=1)
        assert set(sets[0].heads.tolist()) <= {0, 1}

    def test_fallback_repeats_previous_hop(self, tiny_kg):
        sets = user_ripple_sets(tiny_kg, np.asarray([0]), hops=2)
        # Hop 2 falls back to hop 1 (tails have no outgoing facts).
        assert sets[1].size == sets[0].size

    def test_max_size_sampling(self, tiny_kg):
        sets = user_ripple_sets(tiny_kg, np.asarray([0, 1]), hops=1, max_size=3, seed=0)
        assert sets[0].size == 3

    def test_entity_ripple(self, tiny_kg):
        sets = entity_ripple_sets(tiny_kg, 1, hops=1)
        assert set(sets[0].tails.tolist()) == {2, 3, 5}

    def test_invalid_hops(self, tiny_kg):
        with pytest.raises(GraphError):
            user_ripple_sets(tiny_kg, np.asarray([0]), hops=0)

    def test_deterministic_with_seed(self, tiny_kg):
        a = user_ripple_sets(tiny_kg, np.asarray([0]), hops=2, max_size=4, seed=9)
        b = user_ripple_sets(tiny_kg, np.asarray([0]), hops=2, max_size=4, seed=9)
        for s1, s2 in zip(a, b):
            assert np.array_equal(s1.tails, s2.tails)


class TestNeighborCache:
    def test_full_lists(self, tiny_kg):
        cache = NeighborCache(tiny_kg)
        rels, nbrs = cache.neighbors_of(2)  # genre2 <- item0, item1
        assert set(nbrs.tolist()) == {0, 1}
        assert set(rels.tolist()) == {0}

    def test_isolated_entity_self_loop(self):
        store = TripleStore.from_triples([(0, 0, 1)], 3, 1)
        from repro.kg.graph import KnowledgeGraph

        cache = NeighborCache(KnowledgeGraph(store))
        rels, nbrs = cache.neighbors_of(2)
        assert nbrs.tolist() == [2]
        assert rels.tolist() == [cache.self_relation]

    def test_sample_shape(self, tiny_kg):
        cache = NeighborCache(tiny_kg)
        rels, nbrs = cache.sample(np.asarray([0, 1, 2]), 5, seed=0)
        assert rels.shape == (3, 5) and nbrs.shape == (3, 5)

    def test_sample_only_real_neighbors(self, tiny_kg):
        cache = NeighborCache(tiny_kg)
        __, nbrs = cache.sample(np.asarray([0]), 20, seed=0)
        assert set(nbrs.ravel().tolist()) <= {2, 4}

    def test_sample_deterministic(self, tiny_kg):
        cache = NeighborCache(tiny_kg)
        a = cache.sample(np.asarray([0, 1]), 4, seed=3)[1]
        b = cache.sample(np.asarray([0, 1]), 4, seed=3)[1]
        assert np.array_equal(a, b)

    def test_invalid_num_samples(self, tiny_kg):
        with pytest.raises(GraphError):
            NeighborCache(tiny_kg).sample(np.asarray([0]), 0)


class TestCorruptBatch:
    def test_no_true_facts(self, tiny_kg):
        heads, rels, tails = corrupt_batch(
            tiny_kg.store, np.arange(tiny_kg.num_triples), seed=0
        )
        for fact in zip(heads, rels, tails):
            assert tuple(int(x) for x in fact) not in tiny_kg.store


class TestLifting:
    def test_user_entities_appended(self, tiny_dataset):
        lifted = build_user_item_graph(tiny_dataset)
        kg = tiny_dataset.kg
        assert lifted.kg.num_entities == kg.num_entities + 2
        assert lifted.user_entities.tolist() == [6, 7]

    def test_interaction_facts_added(self, tiny_dataset):
        lifted = build_user_item_graph(tiny_dataset)
        rel = lifted.extra["interact_relation"]
        # user0 interacted with items 0,1; user1 with item 1.
        assert lifted.kg.has_fact(6, rel, 0)
        assert lifted.kg.has_fact(6, rel, 1)
        assert lifted.kg.has_fact(7, rel, 1)
        assert not lifted.kg.has_fact(7, rel, 0)

    def test_types_extended(self, tiny_dataset):
        lifted = build_user_item_graph(tiny_dataset)
        assert lifted.kg.type_name(lifted.kg.type_of(6)) == "user"

    def test_original_facts_preserved(self, tiny_dataset):
        lifted = build_user_item_graph(tiny_dataset)
        for h, r, t in tiny_dataset.kg.triples():
            assert lifted.kg.has_fact(int(h), int(r), int(t))

    def test_requires_kg(self):
        from repro.core.dataset import Dataset
        from repro.core.interactions import InteractionMatrix

        ds = Dataset(name="x", interactions=InteractionMatrix.empty(2, 2))
        with pytest.raises(GraphError):
            build_user_item_graph(ds)


class TestWalks:
    def test_uniform_walks_follow_edges(self, tiny_kg):
        walks = uniform_walks(tiny_kg, num_walks=2, walk_length=4, seed=0)
        assert walks
        neighbor_sets = {
            e: {n for __, n in tiny_kg.neighbors(e)} for e in range(6)
        }
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert b in neighbor_sets[a]

    def test_metapath_walks_alternate_types(self, tiny_kg):
        igi = MetaPath((0, 1, 0), (0, 0))
        walks = metapath_walks(tiny_kg, igi, num_walks=2, walk_length=5, seed=0)
        assert walks
        for walk in walks:
            for pos, node in enumerate(walk):
                expected_type = 0 if pos % 2 == 0 else 1
                assert tiny_kg.type_of(node) == expected_type

    def test_metapath_walks_require_symmetric(self, tiny_kg):
        with pytest.raises(GraphError):
            metapath_walks(tiny_kg, MetaPath((0, 1), (0,)))

    def test_sgns_learns_cooccurrence(self):
        # Two disjoint cliques: embeddings inside a clique should be closer.
        walks = [[0, 1, 0, 1] for __ in range(30)] + [[2, 3, 2, 3] for __ in range(30)]
        emb = train_sgns(walks, num_nodes=4, dim=8, epochs=3, seed=0)
        same = emb[0] @ emb[1]
        cross = emb[0] @ emb[3]
        assert same > cross

    def test_sgns_empty_corpus(self):
        with pytest.raises(GraphError):
            train_sgns([], num_nodes=3)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), max_size=st.integers(1, 8))
def test_property_ripple_sampling_respects_size(seed, max_size):
    triples = [(0, 0, 1), (0, 0, 2), (1, 0, 3), (2, 0, 3), (3, 0, 4)]
    store = TripleStore.from_triples(triples, 5, 1)
    from repro.kg.graph import KnowledgeGraph

    kg = KnowledgeGraph(store)
    sets = user_ripple_sets(kg, np.asarray([0]), hops=2, max_size=max_size, seed=seed)
    for ripple in sets:
        assert ripple.size <= max_size
        # Every sampled triple is a real fact.
        for fact in zip(ripple.heads, ripple.relations, ripple.tails):
            assert tuple(int(x) for x in fact) in store
