"""Tests for TripleStore and KnowledgeGraph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore


class TestTripleStore:
    def test_dedup(self):
        store = TripleStore.from_triples([(0, 0, 1), (0, 0, 1)], 2, 1)
        assert store.num_triples == 1

    def test_contains(self):
        store = TripleStore.from_triples([(0, 0, 1)], 2, 1)
        assert (0, 0, 1) in store
        assert (1, 0, 0) not in store

    def test_out_of_range_entity(self):
        with pytest.raises(GraphError):
            TripleStore.from_triples([(0, 0, 5)], 2, 1)

    def test_out_of_range_relation(self):
        with pytest.raises(GraphError):
            TripleStore.from_triples([(0, 3, 1)], 2, 1)

    def test_bad_shape(self):
        with pytest.raises(GraphError):
            TripleStore.from_triples(np.zeros((2, 4), dtype=int), 2, 1)

    def test_empty_store(self):
        store = TripleStore.from_triples([], 3, 2)
        assert store.num_triples == 0
        assert store.neighbors(0) == []

    def test_outgoing_incoming(self):
        store = TripleStore.from_triples([(0, 0, 1), (2, 1, 0)], 3, 2)
        assert store.heads[store.outgoing(0)].tolist() == [0]
        assert store.tails[store.incoming(0)].tolist() == [0]

    def test_neighbors_directed_vs_undirected(self):
        store = TripleStore.from_triples([(0, 0, 1)], 2, 1)
        assert store.neighbors(1, undirected=False) == []
        assert store.neighbors(1, undirected=True) == [(0, 0)]

    def test_with_relation(self):
        store = TripleStore.from_triples([(0, 0, 1), (0, 1, 1)], 2, 2)
        assert store.with_relation(0).size == 1

    def test_degree(self):
        store = TripleStore.from_triples([(0, 0, 1), (1, 0, 2), (2, 0, 1)], 3, 1)
        assert store.degree(1) == 3

    def test_corrupt_never_returns_true_fact(self):
        store = TripleStore.from_triples([(0, 0, 1), (1, 0, 2)], 3, 1)
        rng = np.random.default_rng(0)
        for idx in range(store.num_triples):
            for __ in range(20):
                fact = store.corrupt(idx, seed=rng)
                assert fact not in store

    def test_corrupt_preserves_relation(self):
        store = TripleStore.from_triples([(0, 0, 1)], 5, 2)
        h, r, t = store.corrupt(0, seed=0)
        assert r == 0


@settings(max_examples=30, deadline=None)
@given(
    triples=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)),
        min_size=1,
        max_size=30,
    )
)
def test_property_neighbors_cover_all_triples(triples):
    store = TripleStore.from_triples(np.asarray(triples), 6, 3)
    recovered = set()
    for entity in range(6):
        for rel, nbr in store.neighbors(entity, undirected=False):
            recovered.add((entity, rel, nbr))
    assert recovered == set(map(tuple, triples))


@settings(max_examples=30, deadline=None)
@given(
    triples=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 2), st.integers(0, 5)),
        min_size=1,
        max_size=30,
    )
)
def test_property_degree_sums(triples):
    store = TripleStore.from_triples(np.asarray(triples), 6, 3)
    total = sum(store.degree(e) for e in range(6))
    assert total == 2 * store.num_triples


class TestKnowledgeGraph:
    def test_labels(self, tiny_kg):
        assert tiny_kg.entity_label(0) == "item0"
        assert tiny_kg.relation_label(1) == "acted_by"
        assert tiny_kg.entity_id("genre2") == 2
        assert tiny_kg.relation_id("has_genre") == 0

    def test_unknown_label(self, tiny_kg):
        with pytest.raises(GraphError):
            tiny_kg.entity_id("nope")

    def test_types(self, tiny_kg):
        assert tiny_kg.type_of(0) == 0
        assert tiny_kg.type_name(1) == "genre"
        assert tiny_kg.entities_of_type(2).tolist() == [4, 5]

    def test_fallback_labels(self):
        store = TripleStore.from_triples([(0, 0, 1)], 2, 1)
        kg = KnowledgeGraph(store)
        assert kg.entity_label(0) == "e0"
        assert kg.relation_label(0) == "r0"

    def test_label_count_validation(self):
        store = TripleStore.from_triples([(0, 0, 1)], 2, 1)
        with pytest.raises(GraphError):
            KnowledgeGraph(store, entity_labels=["only-one"])

    def test_has_fact(self, tiny_kg):
        assert tiny_kg.has_fact(0, 0, 2)
        assert not tiny_kg.has_fact(2, 0, 0)

    def test_to_networkx(self, tiny_kg):
        g = tiny_kg.to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == tiny_kg.num_triples

    def test_describe(self, tiny_kg):
        info = tiny_kg.describe()
        assert info["entities"] == 6
        assert info["mean_degree"] > 0
