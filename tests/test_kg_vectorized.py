"""Equivalence tests: vectorized KG kernels vs scalar reference semantics.

The CSR/packed-key rewrite of :class:`TripleStore`, the batched
``corrupt_batch``, and the flat-array :class:`NeighborCache` must agree
exactly with the scalar reference implementations on membership and
neighborhood structure, and the new single-draw RNG paths must stay
deterministic under a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import GraphError
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import NeighborCache, corrupt_batch
from repro.kg.triples import TripleStore


def random_store(seed, num_triples=120, num_entities=25, num_relations=4):
    rng = np.random.default_rng(seed)
    triples = np.stack(
        [
            rng.integers(0, num_entities, size=num_triples),
            rng.integers(0, num_relations, size=num_triples),
            rng.integers(0, num_entities, size=num_triples),
        ],
        axis=1,
    )
    return TripleStore.from_triples(triples, num_entities, num_relations)


class TestContainsBatch:
    def test_matches_tuple_set(self):
        store = random_store(0)
        fact_set = set(
            zip(store.heads.tolist(), store.relations.tolist(), store.tails.tolist())
        )
        rng = np.random.default_rng(1)
        h = rng.integers(0, store.num_entities, size=500)
        r = rng.integers(0, store.num_relations, size=500)
        t = rng.integers(0, store.num_entities, size=500)
        got = store.contains_batch(h, r, t)
        expected = np.asarray(
            [(int(a), int(b), int(c)) in fact_set for a, b, c in zip(h, r, t)]
        )
        assert np.array_equal(got, expected)

    def test_all_facts_present(self):
        store = random_store(2)
        assert store.contains_batch(store.heads, store.relations, store.tails).all()

    def test_out_of_range_is_absent(self):
        store = TripleStore.from_triples([(0, 0, 1)], 2, 1)
        got = store.contains_batch([-1, 0, 2, 0], [0, 1, 0, 0], [1, 1, 1, 2])
        assert not got.any()

    def test_empty_store(self):
        store = TripleStore.from_triples([], 3, 2)
        assert not store.contains_batch([0, 1], [0, 0], [1, 2]).any()
        assert (0, 0, 1) not in store

    def test_scalar_contains_agrees(self):
        store = random_store(3)
        for h, r, t in [(0, 0, 1), (1, 2, 3), (24, 3, 24)]:
            expected = bool(
                ((store.heads == h) & (store.relations == r) & (store.tails == t)).any()
            )
            assert ((h, r, t) in store) == expected


class TestCsrAdjacency:
    def test_outgoing_incoming_match_flatnonzero(self):
        store = random_store(4)
        for entity in range(store.num_entities):
            assert np.array_equal(
                store.outgoing(entity), np.flatnonzero(store.heads == entity)
            )
            assert np.array_equal(
                store.incoming(entity), np.flatnonzero(store.tails == entity)
            )

    def test_with_relation_matches_flatnonzero(self):
        store = random_store(5)
        for rel in range(store.num_relations):
            assert np.array_equal(
                store.with_relation(rel), np.flatnonzero(store.relations == rel)
            )

    def test_degree_batch_matches_scalar(self):
        store = random_store(6)
        entities = np.arange(store.num_entities)
        batch = store.degree_batch(entities)
        assert batch.tolist() == [store.degree(int(e)) for e in entities]

    def test_neighbors_batch_matches_scalar(self):
        store = random_store(7)
        entities = np.asarray([3, 0, 3, 24, 11])
        for undirected in (True, False):
            offsets, rels, nbrs = store.neighbors_batch(entities, undirected)
            for i, entity in enumerate(entities):
                lo, hi = offsets[i], offsets[i + 1]
                pairs = list(zip(rels[lo:hi].tolist(), nbrs[lo:hi].tolist()))
                assert pairs == store.neighbors(int(entity), undirected=undirected)

    def test_neighbors_batch_empty(self):
        store = random_store(8)
        offsets, rels, nbrs = store.neighbors_batch(np.empty(0, dtype=np.int64))
        assert offsets.tolist() == [0] and rels.size == 0 and nbrs.size == 0


class TestCorruptBatch:
    def test_negatives_never_in_store(self):
        store = random_store(9)
        idx = np.arange(store.num_triples)
        heads, rels, tails = corrupt_batch(store, idx, seed=0)
        assert not store.contains_batch(heads, rels, tails).any()

    def test_relations_preserved(self):
        store = random_store(10)
        idx = np.arange(store.num_triples)
        __, rels, __ = corrupt_batch(store, idx, seed=0)
        assert np.array_equal(rels, store.relations[idx])

    def test_exactly_one_side_corrupted(self):
        store = random_store(11)
        idx = np.arange(store.num_triples)
        heads, __, tails = corrupt_batch(store, idx, seed=0)
        head_changed = heads != store.heads[idx]
        tail_changed = tails != store.tails[idx]
        # A candidate equal to the original id is a fact, so it always
        # resamples; at least one side must differ and never both.
        assert (head_changed | tail_changed).all()
        assert not (head_changed & tail_changed).any()

    def test_corrupt_tail_prob_extremes(self):
        store = random_store(12)
        idx = np.arange(store.num_triples)
        heads, __, __ = corrupt_batch(store, idx, seed=0, corrupt_tail_prob=1.0)
        assert np.array_equal(heads, store.heads[idx])
        __, __, tails = corrupt_batch(store, idx, seed=0, corrupt_tail_prob=0.0)
        assert np.array_equal(tails, store.tails[idx])

    def test_deterministic_under_seed(self):
        store = random_store(13)
        idx = np.arange(store.num_triples)
        a = corrupt_batch(store, idx, seed=42)
        b = corrupt_batch(store, idx, seed=42)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_empty_indices(self):
        store = random_store(14)
        heads, rels, tails = corrupt_batch(store, np.empty(0, dtype=np.int64), seed=0)
        assert heads.size == rels.size == tails.size == 0


class TestCorruptFallback:
    def make_dense_store(self):
        # (0, 0, *) dense except tail 3; plus head corruptions all facts too.
        triples = [(0, 0, t) for t in range(5) if t != 3]
        triples += [(h, 0, 0) for h in range(1, 5)]
        return TripleStore.from_triples(triples, 5, 1)

    def test_fallback_returns_first_free_tail(self):
        store = self.make_dense_store()
        assert store.corrupt_fallback(0, 0, 0) == (0, 0, 3)

    def test_scalar_corrupt_with_zero_tries_uses_fallback(self):
        store = self.make_dense_store()
        idx = int(np.flatnonzero((store.heads == 0) & (store.tails == 0))[0])
        fact = store.corrupt(idx, seed=0, max_tries=0)
        assert fact == (0, 0, 3)
        assert fact not in store

    def test_fallback_falls_back_to_heads(self):
        # Every (0, 0, *) is a fact, but head corruptions of tail 1 are free.
        triples = [(0, 0, t) for t in range(3)]
        store = TripleStore.from_triples(triples, 3, 1)
        assert store.corrupt_fallback(0, 0, 1) == (1, 0, 1)

    def test_fallback_raises_when_saturated(self):
        # Complete bipartite-ish: every head/tail corruption is a fact.
        triples = [(h, 0, t) for h in range(2) for t in range(2)]
        store = TripleStore.from_triples(triples, 2, 1)
        with pytest.raises(GraphError):
            store.corrupt_fallback(0, 0, 0)

    def test_batch_fallback_never_returns_fact(self):
        store = self.make_dense_store()
        idx = np.arange(store.num_triples)
        heads, rels, tails = corrupt_batch(store, idx, seed=0, max_tries=1)
        assert not store.contains_batch(heads, rels, tails).any()


class TestNeighborCacheVectorized:
    def test_samples_are_true_neighbor_pairs(self):
        store = random_store(15)
        kg = KnowledgeGraph(store)
        cache = NeighborCache(kg)
        entities = np.arange(kg.num_entities)
        rels, nbrs = cache.sample(entities, 6, seed=0)
        for e in entities:
            true_pairs = set(zip(*(a.tolist() for a in cache.neighbors_of(int(e)))))
            assert set(zip(rels[e].tolist(), nbrs[e].tolist())) <= true_pairs

    def test_neighbors_of_matches_store(self):
        store = random_store(16)
        kg = KnowledgeGraph(store)
        cache = NeighborCache(kg)
        for e in range(kg.num_entities):
            rels, nbrs = cache.neighbors_of(e)
            expected = kg.neighbors(e, undirected=True)
            if expected:
                assert list(zip(rels.tolist(), nbrs.tolist())) == expected
            else:
                assert rels.tolist() == [cache.self_relation]
                assert nbrs.tolist() == [e]

    def test_single_rng_draw_determinism(self):
        store = random_store(17)
        cache = NeighborCache(KnowledgeGraph(store))
        entities = np.asarray([0, 5, 5, 12])
        a = cache.sample(entities, 7, seed=99)
        b = cache.sample(entities, 7, seed=99)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_empty_entity_batch(self):
        store = random_store(18)
        cache = NeighborCache(KnowledgeGraph(store))
        rels, nbrs = cache.sample(np.empty(0, dtype=np.int64), 3, seed=0)
        assert rels.shape == nbrs.shape == (0, 3)


class TestSubgraphVectorized:
    def reference_subgraph_triples(self, kg, mapping):
        inverse = {int(e): i for i, e in enumerate(mapping)}
        return sorted(
            (inverse[int(h)], int(r), inverse[int(t)])
            for h, r, t in kg.triples()
            if int(h) in inverse and int(t) in inverse
        )

    def test_matches_dict_reference(self):
        store = random_store(19)
        kg = KnowledgeGraph(store)
        mapping = np.unique(np.asarray([0, 3, 5, 7, 11, 13, 20, 24]))
        sub, got_mapping = kg.subgraph(mapping)
        assert np.array_equal(got_mapping, mapping)
        expected = self.reference_subgraph_triples(kg, mapping)
        assert sorted(map(tuple, sub.triples().tolist())) == expected

    def test_empty_selection(self):
        store = random_store(20)
        kg = KnowledgeGraph(store)
        sub, mapping = kg.subgraph(np.empty(0, dtype=np.int64))
        assert mapping.size == 0 and sub.num_triples == 0


@settings(max_examples=30, deadline=None)
@given(
    triples=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 3), st.integers(0, 7)),
        min_size=1,
        max_size=40,
    ),
    seed=st.integers(0, 50),
)
def test_property_corrupt_batch_filtered(triples, seed):
    store = TripleStore.from_triples(np.asarray(triples), 8, 4)
    idx = np.arange(store.num_triples)
    heads, rels, tails = corrupt_batch(store, idx, seed=seed)
    for fact in zip(heads, rels, tails):
        assert tuple(int(x) for x in fact) not in store


@settings(max_examples=30, deadline=None)
@given(
    triples=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 3), st.integers(0, 7)),
        min_size=0,
        max_size=40,
    )
)
def test_property_contains_batch_no_false_results(triples):
    store = TripleStore.from_triples(
        np.asarray(triples, dtype=np.int64).reshape(-1, 3), 8, 4
    )
    fact_set = set(map(tuple, np.asarray(triples, dtype=np.int64).reshape(-1, 3).tolist()))
    h, r, t = np.meshgrid(np.arange(8), np.arange(4), np.arange(8), indexing="ij")
    got = store.contains_batch(h.ravel(), r.ravel(), t.ravel())
    expected = np.asarray(
        [
            (a, b, c) in fact_set
            for a, b, c in zip(h.ravel().tolist(), r.ravel().tolist(), t.ravel().tolist())
        ]
    )
    assert np.array_equal(got, expected)


class TestKgeDeterminism:
    def test_fit_history_deterministic(self):
        from repro.kge.translational import TransE

        store = random_store(21, num_triples=60, num_entities=15, num_relations=3)
        h1 = TransE(store.num_entities, store.num_relations, dim=8, seed=0).fit(
            store, epochs=3, seed=5
        )
        h2 = TransE(store.num_entities, store.num_relations, dim=8, seed=0).fit(
            store, epochs=3, seed=5
        )
        assert h1 == h2
