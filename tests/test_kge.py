"""Tests for the KGE substrate: training, scoring, link prediction."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigError, NotFittedError
from repro.kg.completion import evaluate_link_prediction
from repro.kg.triples import TripleStore
from repro.kge import KGE_MODELS, ComplEx, DistMult, TransD, TransE, TransH, TransR


@pytest.fixture(scope="module")
def clustered_store():
    """A KG with two clusters sharing hubs; relation 0 only."""
    rng = np.random.default_rng(0)
    triples = []
    for e in range(1, 10):
        triples.append((e, 0, 0))  # cluster A hub 0
    for e in range(11, 20):
        triples.append((e, 0, 10))  # cluster B hub 10
    triples += [(1, 1, 2), (3, 1, 4), (11, 1, 12)]
    return TripleStore.from_triples(triples, 20, 2)


class TestTrainingContracts:
    @pytest.mark.parametrize("name", list(KGE_MODELS))
    def test_loss_decreases(self, name, clustered_store):
        model = KGE_MODELS[name](20, 2, dim=8, seed=0)
        history = model.fit(clustered_store, epochs=8, seed=0)
        assert history[-1] < history[0]
        assert model.is_fitted

    @pytest.mark.parametrize("name", list(KGE_MODELS))
    def test_true_beats_random_triples(self, name, clustered_store):
        model = KGE_MODELS[name](20, 2, dim=8, seed=0)
        model.fit(clustered_store, epochs=20, seed=0)
        true_scores = model.score_triples(
            clustered_store.heads, clustered_store.relations, clustered_store.tails
        )
        rng = np.random.default_rng(1)
        fake = np.stack(
            [rng.integers(0, 20, 50), rng.integers(0, 2, 50), rng.integers(0, 20, 50)],
            axis=1,
        )
        fake = np.asarray(
            [f for f in fake if tuple(f) not in clustered_store][:30]
        )
        fake_scores = model.score_triples(fake[:, 0], fake[:, 1], fake[:, 2])
        assert true_scores.mean() > fake_scores.mean()

    def test_deterministic_given_seed(self, clustered_store):
        a = TransE(20, 2, dim=6, seed=3)
        a.fit(clustered_store, epochs=3, seed=3)
        b = TransE(20, 2, dim=6, seed=3)
        b.fit(clustered_store, epochs=3, seed=3)
        np.testing.assert_allclose(a.entity_embeddings(), b.entity_embeddings())

    def test_empty_store_rejected(self):
        empty = TripleStore.from_triples([], 3, 1)
        with pytest.raises(ConfigError):
            TransE(3, 1, dim=4).fit(empty)

    def test_invalid_dim(self):
        with pytest.raises(ConfigError):
            TransE(3, 1, dim=0)

    def test_transe_entities_normalized(self, clustered_store):
        model = TransE(20, 2, dim=6, seed=0)
        model.fit(clustered_store, epochs=2, seed=0)
        norms = np.linalg.norm(model.entity_embeddings(), axis=1)
        assert (norms <= 1.0 + 1e-9).all()

    def test_complex_embedding_width(self):
        model = ComplEx(5, 2, dim=4, seed=0)
        assert model.entity_embeddings().shape == (5, 8)


class TestScoreSemantics:
    def test_transe_translation_identity(self):
        """score(h, r, t) is maximal when t = h + r exactly."""
        model = TransE(3, 1, dim=4, seed=0)
        model.entity.weight.data[0] = [1.0, 0.0, 0.0, 0.0]
        model.relation.weight.data[0] = [0.0, 1.0, 0.0, 0.0]
        model.entity.weight.data[1] = [1.0, 1.0, 0.0, 0.0]  # = h + r
        model.entity.weight.data[2] = [0.0, 0.0, 5.0, 0.0]
        scores = model.score_triples([0, 0], [0, 0], [1, 2])
        assert scores[0] == pytest.approx(0.0)
        assert scores[0] > scores[1]

    def test_distmult_symmetric_relation(self):
        model = DistMult(4, 1, dim=6, seed=0)
        s1 = model.score_triples([0], [0], [1])
        s2 = model.score_triples([1], [0], [0])
        np.testing.assert_allclose(s1, s2)  # DistMult cannot break symmetry

    def test_complex_handles_asymmetry(self):
        model = ComplEx(4, 1, dim=6, seed=0)
        s1 = model.score_triples([0], [0], [1])
        s2 = model.score_triples([1], [0], [0])
        assert not np.allclose(s1, s2)

    @pytest.mark.parametrize("cls", [TransH, TransR, TransD])
    def test_projection_models_score_shape(self, cls):
        model = cls(6, 2, dim=5, seed=0)
        scores = model.score_triples([0, 1, 2], [0, 1, 0], [3, 4, 5])
        assert scores.shape == (3,)


class TestLinkPrediction:
    def test_perfect_scorer_gets_mrr_one(self, clustered_store):
        facts = {tuple(t) for t in clustered_store.triples().tolist()}

        def oracle(h, r, t):
            return np.asarray(
                [1.0 if (hh, rr, tt) in facts else 0.0 for hh, rr, tt in zip(h, r, t)]
            )

        result = evaluate_link_prediction(
            oracle, clustered_store.triples()[:5], clustered_store, 20
        )
        assert result.mrr == pytest.approx(1.0)
        assert result.hits_at_1 == pytest.approx(1.0)

    def test_random_scorer_near_chance(self, clustered_store):
        rng = np.random.default_rng(0)

        def random_scorer(h, r, t):
            return rng.random(len(h))

        result = evaluate_link_prediction(
            random_scorer, clustered_store.triples(), clustered_store, 20
        )
        assert 2.0 < result.mean_rank < 18.0

    def test_trained_model_beats_random(self, clustered_store):
        model = TransE(20, 2, dim=8, seed=0)
        model.fit(clustered_store, epochs=25, seed=0)
        trained = evaluate_link_prediction(
            model.score_triples, clustered_store.triples()[:10], clustered_store, 20
        )
        rng = np.random.default_rng(0)
        random_result = evaluate_link_prediction(
            lambda h, r, t: rng.random(len(h)),
            clustered_store.triples()[:10],
            clustered_store,
            20,
        )
        assert trained.mrr > random_result.mrr

    def test_empty_test_rejected(self, clustered_store):
        from repro.core.exceptions import EvaluationError

        with pytest.raises(EvaluationError):
            evaluate_link_prediction(
                lambda h, r, t: np.zeros(len(h)),
                np.empty((0, 3), dtype=np.int64),
                clustered_store,
                20,
            )
