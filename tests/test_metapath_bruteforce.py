"""Property tests: meta-path machinery vs brute-force path counting.

On small random typed graphs, the sparse commuting-matrix implementation
must agree exactly with naive path enumeration — for adjacency counts,
PathSim values, and the AND/OR semantics of meta-graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg.graph import KnowledgeGraph
from repro.kg.metapath import (
    MetaGraph,
    MetaPath,
    metagraph_adjacency,
    metapath_adjacency,
    pathsim_matrix,
)
from repro.kg.triples import TripleStore

NUM_ITEMS = 4
NUM_ATTRS_A = 3
NUM_ATTRS_B = 2
NUM_ENTITIES = NUM_ITEMS + NUM_ATTRS_A + NUM_ATTRS_B
TYPES = np.asarray([0] * NUM_ITEMS + [1] * NUM_ATTRS_A + [2] * NUM_ATTRS_B)

IAI = MetaPath((0, 1, 0), (0, 0))
IBI = MetaPath((0, 2, 0), (1, 1))


@st.composite
def random_typed_graph(draw):
    """Random bipartite-ish facts: items -r0-> typeA, items -r1-> typeB."""
    facts = set()
    n_facts = draw(st.integers(1, 12))
    for __ in range(n_facts):
        item = draw(st.integers(0, NUM_ITEMS - 1))
        if draw(st.booleans()):
            attr = NUM_ITEMS + draw(st.integers(0, NUM_ATTRS_A - 1))
            facts.add((item, 0, attr))
        else:
            attr = NUM_ITEMS + NUM_ATTRS_A + draw(st.integers(0, NUM_ATTRS_B - 1))
            facts.add((item, 1, attr))
    store = TripleStore.from_triples(sorted(facts), NUM_ENTITIES, 2)
    return KnowledgeGraph(store, entity_types=TYPES)


def brute_force_counts(kg: KnowledgeGraph, metapath: MetaPath) -> np.ndarray:
    """Count path instances by explicit two-step enumeration."""
    counts = np.zeros((kg.num_entities, kg.num_entities))
    relation = metapath.relation_types[0]
    mid_type = metapath.node_types[1]
    for x in range(kg.num_entities):
        if kg.entity_types[x] != 0:
            continue
        for r1, mid in kg.neighbors(x, undirected=True):
            if r1 != relation or kg.entity_types[mid] != mid_type:
                continue
            for r2, y in kg.neighbors(mid, undirected=True):
                if r2 != relation or kg.entity_types[y] != 0:
                    continue
                counts[x, y] += 1
    return counts


@settings(max_examples=40, deadline=None)
@given(kg=random_typed_graph())
def test_property_adjacency_matches_bruteforce(kg):
    for metapath in (IAI, IBI):
        fast = metapath_adjacency(kg, metapath).toarray()
        slow = brute_force_counts(kg, metapath)
        np.testing.assert_allclose(fast, slow)


@settings(max_examples=40, deadline=None)
@given(kg=random_typed_graph())
def test_property_pathsim_from_bruteforce(kg):
    counts = brute_force_counts(kg, IAI)
    sim = pathsim_matrix(kg, IAI).toarray()
    for x in range(NUM_ITEMS):
        for y in range(NUM_ITEMS):
            denom = counts[x, x] + counts[y, y]
            expected = 2 * counts[x, y] / denom if denom else 0.0
            assert sim[x, y] == pytest.approx(expected)


@settings(max_examples=40, deadline=None)
@given(kg=random_typed_graph())
def test_property_metagraph_and_or_semantics(kg):
    a = brute_force_counts(kg, IAI)
    b = brute_force_counts(kg, IBI)
    and_mat = metagraph_adjacency(kg, MetaGraph((IAI, IBI), combine="hadamard")).toarray()
    or_mat = metagraph_adjacency(kg, MetaGraph((IAI, IBI), combine="sum")).toarray()
    np.testing.assert_allclose(and_mat, a * b)
    np.testing.assert_allclose(or_mat, a + b)


@settings(max_examples=30, deadline=None)
@given(kg=random_typed_graph())
def test_property_pathsim_diagonal_and_bounds(kg):
    sim = pathsim_matrix(kg, IAI).toarray()
    counts = brute_force_counts(kg, IAI)
    for x in range(NUM_ITEMS):
        if counts[x, x] > 0:
            assert sim[x, x] == pytest.approx(1.0)
    assert (sim >= -1e-12).all() and (sim <= 1.0 + 1e-12).all()
