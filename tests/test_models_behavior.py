"""Behavioral tests per model family: the things each family is *for*."""

import numpy as np
import pytest

from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.eval.evaluator import Evaluator
from repro.models import baselines, embedding_based, path_based, unified


@pytest.fixture(scope="module")
def split():
    data = make_movie_dataset(seed=5, num_users=40, num_items=60)
    return random_split(data, seed=5)


@pytest.fixture(scope="module")
def evaluator(split):
    train, test = split
    return Evaluator(train, test, seed=5, max_users=25)


class TestBaselines:
    def test_most_popular_ranks_by_degree(self, split):
        train, __ = split
        model = baselines.MostPopular().fit(train)
        degrees = train.interactions.item_degrees()
        top = model.recommend(0, k=3, exclude_seen=False)
        assert degrees[top[0]] == degrees.max()

    def test_itemknn_similar_item_scores_high(self, split):
        train, __ = split
        model = baselines.ItemKNN(num_neighbors=10).fit(train)
        user = int(np.argmax(train.interactions.user_degrees()))
        scores = model.score_all(user)
        assert scores.max() > 0

    def test_bpr_learns_training_preferences(self, split):
        train, __ = split
        model = baselines.BPRMF(epochs=30, seed=0).fit(train)
        # Training positives should outscore random items on average.
        diffs = []
        rng = np.random.default_rng(0)
        for user in range(10):
            scores = model.score_all(user)
            pos = train.interactions.items_of(user)
            neg = rng.integers(0, train.num_items, size=pos.size)
            diffs.append(scores[pos].mean() - scores[neg].mean())
        assert np.mean(diffs) > 0

    def test_fm_kg_features_require_kg(self):
        from repro.core.dataset import Dataset
        from repro.core.exceptions import DataError
        from repro.core.interactions import InteractionMatrix

        no_kg = Dataset(
            name="x",
            interactions=InteractionMatrix.from_pairs([(0, 0)], 2, 2),
        )
        with pytest.raises(DataError):
            baselines.FactorizationMachine(use_kg_features=True).fit(no_kg)

    def test_nmf_factors_nonnegative(self, split):
        train, __ = split
        model = baselines.NMF(iterations=30, seed=0).fit(train)
        assert (model.user_factors >= 0).all()
        assert (model.item_factors >= 0).all()


class TestEmbeddingFamily:
    def test_cke_item_representation_is_sum(self, split):
        train, __ = split
        model = embedding_based.CKE(epochs=2, kge_epochs=2, seed=0).fit(train)
        rep = model.item_representation(0)
        expected = (
            model.offset.weight.data[0]
            + model.structure.data[0]
            + model.content.data[0]
        )
        np.testing.assert_allclose(rep, expected)

    def test_cfkg_scores_are_negative_distances(self, split):
        train, __ = split
        model = embedding_based.CFKG(epochs=5, seed=0).fit(train)
        assert (model.score_all(0) <= 0).all()

    def test_cfkg_explanations_validate(self, split):
        from repro.eval.explain import is_valid_explanation

        train, __ = split
        model = embedding_based.CFKG(epochs=5, seed=0).fit(train)
        for item in model.recommend(0, k=5):
            for expl in model.explain(0, int(item)):
                assert is_valid_explanation(expl, model.explanation_dataset)

    def test_mkr_cross_compress_shapes(self):
        from repro.autograd.tensor import Tensor

        unit = embedding_based.mkr.CrossCompress(4, seed=np.random.default_rng(0))
        v, e = unit(Tensor(np.ones((3, 4))), Tensor(np.ones((3, 4))))
        assert v.shape == (3, 4) and e.shape == (3, 4)

    def test_ktup_preference_attention_sums_to_one(self, split):
        from repro.autograd.tensor import Tensor
        from repro.autograd import ops

        train, __ = split
        model = embedding_based.KTUP(epochs=1, seed=0).fit(train)
        u = model.user(np.asarray([0, 1]))
        v = model._item_latent(np.asarray([0, 1]))
        batch = 2
        p = model.preference.weight
        diff = (
            u.reshape(batch, 1, model.dim)
            + p.reshape(1, model.num_preferences, model.dim)
            - v.reshape(batch, 1, model.dim)
        )
        weights = ops.softmax(-(diff * diff).sum(axis=2), axis=1).numpy()
        np.testing.assert_allclose(weights.sum(axis=1), np.ones(2))

    def test_sed_distance_semantics(self, split):
        train, __ = split
        model = embedding_based.SED().fit(train)
        # Distances are within [0, max_distance]; diagonal zero.
        assert model._distances.min() >= 0
        assert (np.diag(model._distances) == 0).all()

    def test_dkn_uses_text_when_available(self, news_dataset):
        train, __ = random_split(news_dataset, seed=0)
        model = embedding_based.DKN(epochs=1, kge_epochs=2, seed=0).fit(train)
        assert model._word_seq.shape[0] == news_dataset.num_items

    def test_ktgan_generator_probabilities(self, split):
        train, __ = split
        model = embedding_based.KTGAN(epochs=2, kge_epochs=2, seed=0).fit(train)
        p = model._g_probs(0)
        assert p.shape == (train.num_items,)
        np.testing.assert_allclose(p.sum(), 1.0)


class TestPathFamily:
    def test_heterec_theta_learned(self, split):
        train, __ = split
        model = path_based.HeteRec(seed=0).fit(train)
        assert model.theta is not None
        assert np.isfinite(model.theta).all()

    def test_heterec_p_cluster_weights(self, split):
        train, __ = split
        model = path_based.HeteRecP(num_clusters=3, seed=0).fit(train)
        assert model._cluster_theta.shape[0] == 3

    def test_kmeans_assigns_all(self):
        points = np.random.default_rng(0).normal(size=(30, 4))
        assignments, centroids = path_based.kmeans(points, 4, seed=0)
        assert assignments.shape == (30,)
        assert set(assignments.tolist()) <= {0, 1, 2, 3}

    def test_kmeans_k_too_large(self):
        from repro.core.exceptions import ConfigError

        with pytest.raises(ConfigError):
            path_based.kmeans(np.zeros((2, 2)), 5)

    def test_rulerec_weights_nonnegative(self, split):
        train, __ = split
        model = path_based.RuleRec(rule_epochs=5, mf_epochs=3, seed=0).fit(train)
        assert (model.rule_weights >= 0).all()

    def test_rulerec_explanation_cites_rule(self, split):
        train, __ = split
        model = path_based.RuleRec(rule_epochs=5, mf_epochs=3, seed=0).fit(train)
        recs = model.recommend(0, k=5)
        explained = [model.explain(0, int(v)) for v in recs]
        assert any(e for e in explained)
        for group in explained:
            for expl in group:
                assert expl.kind == "rule"
                assert "rule" in expl.detail

    def test_proppr_scores_are_probabilities(self, split):
        train, __ = split
        model = path_based.ProPPR(weight_rounds=0, iterations=8, seed=0).fit(train)
        scores = model.score_all(0)
        assert (scores >= 0).all()
        assert scores.sum() <= 1.0 + 1e-9

    def test_pgpr_explanations_end_at_item(self, split):
        train, __ = split
        model = path_based.PGPR(epochs=1, kge_epochs=2, seed=0).fit(train)
        lifted = model._lifted
        for item in model.recommend(0, k=5):
            for expl in model.explain(0, int(item)):
                assert expl.entities[-1] == int(lifted.item_entities[item])
                assert expl.entities[0] == int(lifted.user_entities[0])

    def test_path_bank_excludes_direct_edge(self, split):
        """The trivial user->item interact edge must not leak into paths."""
        train, __ = split
        model = path_based.RKGE(epochs=1, seed=0).fit(train)
        user = 0
        for item in train.interactions.items_of(user)[:3]:
            for path in model._bank.paths(user, int(item)):
                assert path.length >= 2


class TestUnifiedFamily:
    def test_ripplenet_hop_arrays_are_facts(self, split):
        train, __ = split
        model = unified.RippleNet(epochs=1, ripple_size=8, seed=0).fit(train)
        kg = train.kg
        for user in range(3):
            for hop in range(model.hops):
                mask = model._mask[user, hop] > 0
                heads = model._heads[user, hop][mask]
                rels = model._rels[user, hop][mask]
                tails = model._tails[user, hop][mask]
                for fact in zip(heads, rels, tails):
                    assert tuple(int(x) for x in fact) in kg.store

    def test_kgcn_receptive_field_entities_valid(self, split):
        train, __ = split
        model = unified.KGCN(epochs=1, num_neighbors=4, hops=2, seed=0).fit(train)
        kg = train.kg
        assert len(model._ent_hops) == 3
        assert model._ent_hops[1].shape == (train.num_items, 4)
        assert model._ent_hops[2].shape == (train.num_items, 16)
        assert model._ent_hops[1].max() < kg.num_entities

    @pytest.mark.parametrize("agg", unified.AGGREGATORS)
    def test_kgcn_all_aggregators_run(self, split, agg):
        train, __ = split
        model = unified.KGCN(epochs=1, aggregator=agg, num_neighbors=4, seed=0)
        scores = model.fit(train).score_all(0)
        assert np.isfinite(scores).all()

    def test_kgcn_bad_aggregator(self):
        from repro.core.exceptions import ConfigError

        with pytest.raises(ConfigError):
            unified.KGCN(aggregator="nope")

    def test_kgat_explanations_on_lifted_graph(self, split):
        from repro.eval.explain import is_valid_explanation

        train, __ = split
        model = unified.KGAT(epochs=1, pretrain_epochs=2, seed=0).fit(train)
        found_any = False
        for item in model.recommend(0, k=5):
            for expl in model.explain(0, int(item)):
                found_any = True
                assert is_valid_explanation(expl, model.explanation_dataset)
        assert found_any

    def test_requires_kg_enforced(self):
        from repro.core.dataset import Dataset
        from repro.core.exceptions import DataError
        from repro.core.interactions import InteractionMatrix

        no_kg = Dataset(
            name="x", interactions=InteractionMatrix.from_pairs([(0, 0), (1, 1)], 2, 2)
        )
        with pytest.raises(DataError):
            unified.RippleNet(epochs=1).fit(no_kg)

    def test_multitask_weight_zero_disables_extra_loss(self, split):
        train, __ = split
        model = embedding_based.KTUP(epochs=1, kg_weight=0.0, seed=0).fit(train)
        assert model._extra_loss(np.random.default_rng(0), 4) is None
