"""Second behavioral pass: models covered so far only by contract tests."""

import numpy as np
import pytest

from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.models import baselines, embedding_based, path_based, unified


@pytest.fixture(scope="module")
def split():
    data = make_movie_dataset(seed=21, num_users=30, num_items=50)
    return random_split(data, seed=21)


class TestKSR:
    def test_sequence_arrays_built_from_history(self, split):
        train, __ = split
        model = embedding_based.KSR(epochs=1, kge_epochs=2, seed=0).fit(train)
        for user in range(5):
            history = set(train.interactions.items_of(user).tolist())
            mask = model._seq_mask[user] > 0
            seq_items = set(model._sequence[user][mask].tolist())
            assert seq_items <= history

    def test_memory_has_relation_slots(self, split):
        train, __ = split
        model = embedding_based.KSR(epochs=1, kge_epochs=2, seed=0).fit(train)
        assert model._memory.shape == (
            train.num_users,
            train.kg.num_relations,
            model.dim,
        )

    def test_memory_rows_from_attribute_embeddings(self, split):
        """A user's genre memory is the mean of their items' genre vectors."""
        train, __ = split
        model = embedding_based.KSR(epochs=1, kge_epochs=2, seed=0).fit(train)
        kg = train.kg
        user = 0
        rel = kg.relation_id("has_genre")
        vectors = []
        for item in train.interactions.items_of(user):
            entity = train.entity_of_item(int(item))
            for r, nbr in kg.neighbors(entity, undirected=False):
                if r == rel:
                    vectors.append(model._item_entity_emb[nbr] if nbr < len(model._item_entity_emb) else None)
        # Recompute directly from the KGE table used at build time.
        # (The memory stores TransE embeddings of *attribute* entities,
        # which are not item-aligned; assert the slot is non-zero when the
        # user has genre links at all.)
        if vectors:
            assert np.abs(model._memory[user, rel]).sum() > 0


class TestSHINE:
    def test_channel_features_shapes(self, split):
        train, __ = split
        model = embedding_based.SHINE(epochs=1, ae_epochs=3, seed=0).fit(train)
        assert model._user_feats.shape == (train.num_users, 2 * model.dim)
        assert model._item_feats.shape == (train.num_items, 2 * model.dim)

    def test_social_channel_symmetric_input(self, split):
        """Co-interaction adjacency fed to the social AE has zero diagonal."""
        train, __ = split
        dense = train.interactions.to_dense()
        social = dense @ dense.T
        np.fill_diagonal(social, 0.0)
        assert (np.diag(social) == 0).all()


class TestUserKNNvsItemKNN:
    def test_transpose_duality(self, split):
        """UserKNN on R equals ItemKNN machinery on R^T (same similarity)."""
        train, __ = split
        user_knn = baselines.UserKNN(num_neighbors=50).fit(train)
        from repro.models.baselines.knn import _cosine_similarity

        sim = _cosine_similarity(train.interactions.to_csr().T.tocsr(), 0.0)
        assert sim.shape == (train.num_users, train.num_users)
        # Scoring a user equals their similarity row times R.
        row = np.asarray(user_knn._similarity.getrow(0).todense()).ravel()
        manual = row @ train.interactions.to_dense()
        np.testing.assert_allclose(user_knn.score_all(0), manual, rtol=1e-8)


class TestHeteCF:
    def test_extends_hete_mf(self, split):
        train, __ = split
        model = path_based.HeteCF(epochs=1, seed=0).fit(train)
        assert isinstance(model, path_based.HeteMF)
        assert np.isfinite(model.score_all(0)).all()


class TestSemRec:
    def test_path_weights_learned(self, split):
        train, __ = split
        model = path_based.SemRec(weight_epochs=5, seed=0).fit(train)
        assert model.path_weights is not None
        assert np.isfinite(model.path_weights).all()

    def test_predictions_from_similar_users(self, split):
        """Scores are weighted sums of other users' feedback rows."""
        train, __ = split
        model = path_based.SemRec(weight_epochs=3, seed=0).fit(train)
        scores = model.score_all(0)
        assert scores.shape == (train.num_items,)
        # Neighborhood predictions are bounded by the max feedback value
        # times the (normalized) weights summed.
        assert np.isfinite(scores).all()


class TestFMG:
    def test_feature_blocks_standardized(self, split):
        train, __ = split
        model = path_based.FMG(epochs=1, lr=0.02, seed=0).fit(train)
        means = model._item_feats.mean(axis=0)
        stds = model._item_feats.std(axis=0)
        np.testing.assert_allclose(means, 0.0, atol=1e-8)
        assert (stds < 1.5).all()

    def test_uses_metagraphs_beyond_paths(self, split):
        train, __ = split
        model = path_based.FMG(num_structures=3, epochs=1, lr=0.02, seed=0)
        from repro.kg.metapath import MetaGraph
        from repro.models.path_based import common

        lifted = common.lift(train)
        structures = model._structures(lifted)
        assert any(isinstance(s, MetaGraph) for s in structures)


class TestProPPR:
    def test_relation_weights_cover_all_relations(self, split):
        train, __ = split
        model = path_based.ProPPR(weight_rounds=1, iterations=5, seed=0).fit(train)
        assert model.relation_weights.shape == (model._lifted.kg.num_relations,)
        assert (model.relation_weights > 0).all()

    def test_pagerank_mass_conserved(self, split):
        train, __ = split
        model = path_based.ProPPR(weight_rounds=0, iterations=10, seed=0).fit(train)
        p = model._pagerank(0)
        assert p.sum() == pytest.approx(1.0, abs=1e-6)


class TestHERec:
    def test_fused_embeddings_shapes(self, split):
        train, __ = split
        model = path_based.HERec(
            epochs=1, num_walks=2, sgns_epochs=1, seed=0
        ).fit(train)
        assert model._item_embed.shape[0] == train.num_items
        assert model._user_embed.shape[0] == train.num_users
        assert model._item_embed.shape[1] % model.dim == 0


class TestEkarVsPGPR:
    def test_reward_definitions_differ(self, split):
        train, __ = split
        pgpr = path_based.PGPR(epochs=1, kge_epochs=2, seed=0).fit(train)
        ekar = path_based.Ekar(epochs=1, kge_epochs=2, seed=0).fit(train)
        # For an item in the user's history, PGPR rewards 1.0 exactly;
        # Ekar rewards the sigmoid affinity (almost surely != 1.0).
        user = 0
        hist_item = int(train.interactions.items_of(user)[0])
        entity = int(pgpr._lifted.item_entities[hist_item])
        assert pgpr._terminal_reward(user, entity) == 1.0
        assert ekar._terminal_reward(user, entity) != 1.0

    def test_nonitem_terminal_gets_zero(self, split):
        train, __ = split
        pgpr = path_based.PGPR(epochs=1, kge_epochs=2, seed=0).fit(train)
        attr_entity = train.num_items  # first attribute entity
        assert pgpr._terminal_reward(0, attr_entity) == 0.0


class TestKGCNLS:
    def test_label_holdout_excludes_candidate(self, split):
        """The LS propagated label must not use the candidate's own label."""
        train, __ = split
        model = unified.KGCNLS(epochs=1, num_neighbors=4, seed=0).fit(train)
        user = 0
        pos = int(train.interactions.items_of(user)[0])
        u = model.user(np.asarray([user]))
        value = model._propagated_label(
            np.asarray([user]), np.asarray([pos]), u
        ).numpy()
        assert 0.0 <= value[0] <= 1.0

    def test_ls_weight_zero_reduces_to_kgcn_loss(self, split):
        train, __ = split
        rng = np.random.default_rng(0)
        model = unified.KGCNLS(ls_weight=0.0, epochs=1, num_neighbors=4, seed=0)
        model.fit(train)
        users = train.interactions.pairs()[:8, 0]
        positives = train.interactions.pairs()[:8, 1]
        loss = model._batch_loss(users, positives, train.num_items, rng)
        assert np.isfinite(loss.item())


class TestRippleNetAgg:
    def test_flag_set(self, split):
        train, __ = split
        model = unified.RippleNetAgg(epochs=1, ripple_size=6, seed=0)
        assert model.aggregate_item is True
        model.fit(train)
        assert np.isfinite(model.score_all(0)).all()

    def test_differs_from_plain_ripplenet(self, split):
        train, __ = split
        plain = unified.RippleNet(epochs=2, ripple_size=6, seed=0).fit(train)
        agg = unified.RippleNetAgg(epochs=2, ripple_size=6, seed=0).fit(train)
        assert not np.allclose(plain.score_all(0), agg.score_all(0))


class TestRCoLMMultitask:
    def test_extra_loss_present(self, split):
        train, __ = split
        model = unified.RCoLM(epochs=1, pretrain_epochs=2, seed=0).fit(train)
        extra = model._extra_loss(np.random.default_rng(0), 8)
        assert extra is not None
        assert np.isfinite(extra.item())

    def test_weight_zero_disables(self, split):
        train, __ = split
        model = unified.RCoLM(kg_weight=0.0, epochs=1, pretrain_epochs=2, seed=0)
        model.fit(train)
        assert model._extra_loss(np.random.default_rng(0), 8) is None


class TestKNI:
    def test_neighborhoods_include_item_entity(self, split):
        train, __ = split
        model = unified.KNI(epochs=1, seed=0).fit(train)
        for item in range(5):
            assert model._item_nbrs[item, 0] == train.entity_of_item(item)

    def test_user_neighborhoods_from_history(self, split):
        train, __ = split
        model = unified.KNI(epochs=1, seed=0).fit(train)
        for user in range(5):
            history_entities = {
                train.entity_of_item(int(v))
                for v in train.interactions.items_of(user)
            }
            mask = model._user_mask[user] > 0
            assert set(model._user_nbrs[user][mask].tolist()) <= history_entities


class TestIntentGC:
    def test_per_relation_adjacency_row_stochastic(self, split):
        train, __ = split
        model = unified.IntentGC(epochs=1, seed=0).fit(train)
        for adjacency in model._adjacency:
            sums = adjacency.sum(axis=1)
            assert ((sums < 1.0 + 1e-9)).all()

    def test_score_all_matches_batch(self, split):
        train, __ = split
        model = unified.IntentGC(epochs=1, seed=0).fit(train)
        fast = model.score_all(1)
        items = np.arange(train.num_items)
        slow = model._score_batch(np.full(items.size, 1), items).numpy()
        np.testing.assert_allclose(fast, slow, rtol=1e-8)


class TestDKFMandSED:
    def test_dkfm_dense_features_from_kge(self, split):
        train, __ = split
        model = embedding_based.DKFM(epochs=1, kge_epochs=2, seed=0).fit(train)
        assert model._item_dense.shape == (train.num_items, model.kge_dim)
        feats, vals = model._features(0, 3)
        assert feats.size == 2 + model.kge_dim
        np.testing.assert_allclose(vals[2:], model._item_dense[3])

    def test_sed_monotone_in_distance(self, split):
        """An item closer to the history must never score lower."""
        train, __ = split
        model = embedding_based.SED().fit(train)
        user = 0
        history = train.interactions.items_of(user)
        mean_dist = model._distances[history].mean(axis=0)
        scores = model.score_all(user)
        # Direct check: score == -mean distance, so ranking is monotone.
        np.testing.assert_allclose(scores, -mean_dist, rtol=1e-12)
