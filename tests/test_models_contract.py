"""Contract tests every registered model must satisfy.

Each model is fitted with tiny budgets on a tiny dataset and checked for:
shape/finiteness of scores, ranking API behaviour, fit-before-use errors,
and seed determinism (for a representative subset).
"""

import numpy as np
import pytest

from repro.core import get_model_class, is_implemented, list_registered
from repro.core.exceptions import NotFittedError
from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.models import baselines, embedding_based, path_based, unified  # noqa: F401

#: name -> factory with minimal training budgets (keeps the suite fast).
FAST_FACTORIES = {
    "Random": lambda: baselines.Random(seed=0),
    "MostPopular": lambda: baselines.MostPopular(),
    "ItemKNN": lambda: baselines.ItemKNN(),
    "UserKNN": lambda: baselines.UserKNN(),
    "FunkSVD": lambda: baselines.FunkSVD(epochs=2, seed=0),
    "NMF": lambda: baselines.NMF(iterations=20, seed=0),
    "BPR-MF": lambda: baselines.BPRMF(epochs=2, seed=0),
    "FM": lambda: baselines.FactorizationMachine(epochs=2, seed=0),
    "CKE": lambda: embedding_based.CKE(epochs=2, kge_epochs=2, seed=0),
    "CFKG": lambda: embedding_based.CFKG(epochs=3, seed=0),
    "ECFKG": lambda: embedding_based.ECFKG(epochs=3, seed=0),
    "entity2rec": lambda: embedding_based.Entity2Rec(
        num_walks=2, sgns_epochs=1, rank_epochs=3, seed=0
    ),
    "BEM": lambda: embedding_based.BEM(kge_epochs=2, seed=0),
    "AKGE": lambda: unified.AKGE(epochs=1, pretrain_epochs=2, seed=0),
    "DKN": lambda: embedding_based.DKN(epochs=1, kge_epochs=2, seed=0),
    "KSR": lambda: embedding_based.KSR(epochs=1, kge_epochs=2, seed=0),
    "MKR": lambda: embedding_based.MKR(epochs=2, seed=0),
    "KTUP": lambda: embedding_based.KTUP(epochs=2, seed=0),
    "RCF": lambda: embedding_based.RCF(epochs=2, seed=0),
    "SHINE": lambda: embedding_based.SHINE(epochs=2, ae_epochs=5, seed=0),
    "KTGAN": lambda: embedding_based.KTGAN(epochs=2, kge_epochs=2, seed=0),
    "DKFM": lambda: embedding_based.DKFM(epochs=1, kge_epochs=2, seed=0),
    "SED": lambda: embedding_based.SED(),
    "Hete-MF": lambda: path_based.HeteMF(epochs=2, seed=0),
    "Hete-CF": lambda: path_based.HeteCF(epochs=1, seed=0),
    "HeteRec": lambda: path_based.HeteRec(theta_epochs=3, nmf_iterations=15, seed=0),
    "HeteRec_p": lambda: path_based.HeteRecP(theta_epochs=3, nmf_iterations=15, seed=0),
    "SemRec": lambda: path_based.SemRec(weight_epochs=3, seed=0),
    "ProPPR": lambda: path_based.ProPPR(weight_rounds=0, iterations=5, seed=0),
    "FMG": lambda: path_based.FMG(epochs=2, lr=0.02, seed=0),
    "MCRec": lambda: path_based.MCRec(epochs=1, seed=0),
    "RKGE": lambda: path_based.RKGE(epochs=1, seed=0),
    "HERec": lambda: path_based.HERec(epochs=2, num_walks=2, sgns_epochs=1, seed=0),
    "KPRN": lambda: path_based.KPRN(epochs=1, seed=0),
    "EIUM": lambda: path_based.EIUM(epochs=1, seed=0),
    "RuleRec": lambda: path_based.RuleRec(rule_epochs=3, mf_epochs=2, seed=0),
    "PGPR": lambda: path_based.PGPR(epochs=1, kge_epochs=2, seed=0),
    "Ekar": lambda: path_based.Ekar(epochs=1, kge_epochs=2, seed=0),
    "RippleNet": lambda: unified.RippleNet(epochs=2, ripple_size=8, seed=0),
    "RippleNet-agg": lambda: unified.RippleNetAgg(epochs=2, ripple_size=8, seed=0),
    "KGCN": lambda: unified.KGCN(epochs=2, num_neighbors=4, seed=0),
    "KGCN-LS": lambda: unified.KGCNLS(epochs=2, num_neighbors=4, seed=0),
    "KGAT": lambda: unified.KGAT(epochs=1, pretrain_epochs=2, seed=0),
    "AKUPM": lambda: unified.AKUPM(epochs=2, pretrain_epochs=2, seed=0),
    "RCoLM": lambda: unified.RCoLM(epochs=2, pretrain_epochs=2, seed=0),
    "KNI": lambda: unified.KNI(epochs=2, seed=0),
    "IntentGC": lambda: unified.IntentGC(epochs=2, seed=0),
}


@pytest.fixture(scope="module")
def contract_split():
    data = make_movie_dataset(seed=1, num_users=16, num_items=24)
    return random_split(data, seed=1)


@pytest.fixture(scope="module")
def fitted_models(contract_split):
    train, __ = contract_split
    fitted = {}
    for name, factory in FAST_FACTORIES.items():
        fitted[name] = factory().fit(train)
    return fitted


def test_every_registered_model_has_fast_factory():
    assert set(list_registered()) == set(FAST_FACTORIES)


def test_registry_lookup_matches_instances():
    for name in FAST_FACTORIES:
        assert is_implemented(name)
        cls = get_model_class(name)
        assert isinstance(FAST_FACTORIES[name](), cls)


@pytest.mark.parametrize("name", sorted(FAST_FACTORIES))
def test_scores_shape_and_finite(name, fitted_models, contract_split):
    train, __ = contract_split
    model = fitted_models[name]
    scores = model.score_all(0)
    assert scores.shape == (train.num_items,)
    assert np.isfinite(scores).all()


@pytest.mark.parametrize("name", sorted(FAST_FACTORIES))
def test_recommend_excludes_seen(name, fitted_models, contract_split):
    train, __ = contract_split
    model = fitted_models[name]
    seen = set(train.interactions.items_of(0).tolist())
    recs = model.recommend(0, k=5)
    assert len(recs) == 5
    assert seen.isdisjoint(set(recs.tolist()))


@pytest.mark.parametrize("name", sorted(FAST_FACTORIES))
def test_predict_matches_score_all(name, fitted_models, contract_split):
    model = fitted_models[name]
    users = np.asarray([1, 1, 2])
    items = np.asarray([0, 3, 5])
    from_predict = model.predict(users, items)
    expected = np.asarray(
        [model.score_all(int(u))[int(v)] for u, v in zip(users, items)]
    )
    np.testing.assert_allclose(from_predict, expected, rtol=1e-8)


@pytest.mark.parametrize("name", sorted(FAST_FACTORIES))
def test_unfitted_raises(name):
    model = FAST_FACTORIES[name]()
    with pytest.raises(NotFittedError):
        model.recommend(0, k=3)


@pytest.mark.parametrize(
    "name", ["BPR-MF", "CKE", "RippleNet", "KGCN", "HeteRec", "CFKG"]
)
def test_seed_determinism(name, contract_split):
    train, __ = contract_split
    a = FAST_FACTORIES[name]().fit(train).score_all(0)
    b = FAST_FACTORIES[name]().fit(train).score_all(0)
    np.testing.assert_allclose(a, b)


@pytest.mark.parametrize("name", sorted(FAST_FACTORIES))
def test_explanations_are_wellformed(name, fitted_models):
    model = fitted_models[name]
    explanations = model.explain(0, 1)
    for expl in explanations:
        assert expl.user_id == 0
        assert expl.item_id == 1
        if expl.entities:
            assert len(expl.entities) == len(expl.relations) + 1
