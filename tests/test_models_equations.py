"""Equation-level checks: model forward passes vs hand-written NumPy.

Each test freezes a model's parameters, recomputes the survey's equations
(Eq. 2, 24-26, 30, 33, the KGCN attention) with plain NumPy, and compares
against the model's differentiable forward pass.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.models.embedding_based import MKR
from repro.models.embedding_based.mkr import CrossCompress
from repro.models.unified import KGCN, RippleNet


def _softmax(x, axis=-1):
    e = np.exp(x - x.max(axis=axis, keepdims=True))
    return e / e.sum(axis=axis, keepdims=True)


@pytest.fixture(scope="module")
def split():
    data = make_movie_dataset(seed=13, num_users=20, num_items=30)
    return random_split(data, seed=13)


class TestRippleNetEquations:
    """Eq. 24-26: relation-space attention and hop responses."""

    def test_forward_matches_manual(self, split):
        train, __ = split
        model = RippleNet(hops=2, ripple_size=6, epochs=1, seed=0).fit(train)
        users = np.asarray([0, 3])
        items = np.asarray([1, 4])

        ent = model.entity.weight.data
        rel = model.rel_matrix.data
        item_ents = train.item_entities[items]
        v = ent[item_ents]  # (B, d)

        query = v.copy()
        responses = []
        for hop in range(model.hops):
            heads = ent[model._heads[users, hop]]  # (B, S, d)
            tails = ent[model._tails[users, hop]]
            rels = rel[model._rels[users, hop]]  # (B, S, d, d)
            mask = model._mask[users, hop]
            # Eq. 24: p_i = softmax(v^T R_i e_h)
            rh = np.einsum("bsij,bsj->bsi", rels, heads)
            logits = np.einsum("bi,bsi->bs", query, rh) + (mask - 1.0) * 1e9
            p = _softmax(logits, axis=1) * mask
            # Eq. 25: o = sum p_i e_t
            o = np.einsum("bs,bsd->bd", p, tails)
            responses.append(o)
            query = o
        u = sum(responses)
        expected = np.einsum("bd,bd->b", u, v)

        actual = model._score_batch(users, items).numpy()
        np.testing.assert_allclose(actual, expected, rtol=1e-10)


class TestKGCNEquations:
    """User-relation attention + the sum aggregator (Eq. 30)."""

    def test_hop1_sum_aggregator_matches_manual(self, split):
        train, __ = split
        model = KGCN(hops=1, num_neighbors=4, aggregator="sum", epochs=1, seed=0)
        model.fit(train)
        users = np.asarray([2, 5])
        items = np.asarray([0, 7])

        u = model.user.weight.data[users]  # (B, d)
        ent = model.entity.weight.data
        rel = model.relation.weight.data

        self_vec = ent[model._ent_hops[0][items]].reshape(2, -1)  # (B, d)
        nbrs = ent[model._ent_hops[1][items]]  # (B, S, d)
        rels = rel[model._rel_hops[0][items]]  # (B, S, d)

        # pi = softmax over neighbors of u . r
        logits = np.einsum("bd,bsd->bs", u, rels)
        att = _softmax(logits, axis=1)
        pooled = np.einsum("bs,bsd->bd", att, nbrs)

        # Eq. 30 (depth 0 -> tanh nonlinearity)
        w = model.agg_weights[0].weight.data
        b = model.agg_weights[0].bias.data
        v = np.tanh((self_vec + pooled) @ w + b)
        expected = np.einsum("bd,bd->b", u, v)

        actual = model._score_batch(users, items).numpy()
        np.testing.assert_allclose(actual, expected, rtol=1e-10)

    def test_attention_weights_sum_to_one(self, split):
        train, __ = split
        model = KGCN(hops=1, num_neighbors=5, epochs=1, seed=0).fit(train)
        users = np.asarray([0, 1, 2])
        rels = model._rel_hops[0][np.asarray([3, 4, 5])]
        u = model.user(users)
        att = model._attention(u, rels).numpy()
        np.testing.assert_allclose(att.sum(axis=2), np.ones((3, 1)), rtol=1e-10)


class TestCrossCompressAlgebra:
    """MKR's cross & compress unit: C = v e^T, outputs via compressions."""

    def test_matches_manual(self):
        rng = np.random.default_rng(0)
        unit = CrossCompress(5, seed=rng)
        v = rng.normal(size=(3, 5))
        e = rng.normal(size=(3, 5))
        v_out, e_out = unit(Tensor(v), Tensor(e))

        for row in range(3):
            c = np.outer(v[row], e[row])  # (d, d)
            expected_v = c @ unit.w_vv.data + c.T @ unit.w_ev.data + unit.b_v.data
            expected_e = c @ unit.w_ve.data + c.T @ unit.w_ee.data + unit.b_e.data
            np.testing.assert_allclose(v_out.numpy()[row], expected_v, rtol=1e-10)
            np.testing.assert_allclose(e_out.numpy()[row], expected_e, rtol=1e-10)

    def test_symmetry_property(self):
        """Swapping v and e swaps the roles of the transposed compressions."""
        rng = np.random.default_rng(1)
        unit = CrossCompress(4, seed=rng)
        # Make the unit symmetric: w_vv == w_ee.T-roles coincide when all
        # four weights are equal; then swapping inputs must swap outputs.
        shared = rng.normal(size=4)
        for w in (unit.w_vv, unit.w_ev, unit.w_ve, unit.w_ee):
            w.data[:] = shared
        unit.b_v.data[:] = 0.0
        unit.b_e.data[:] = 0.0
        v = rng.normal(size=(2, 4))
        e = rng.normal(size=(2, 4))
        v1, e1 = unit(Tensor(v), Tensor(e))
        v2, e2 = unit(Tensor(e), Tensor(v))
        # C(e,v) = C(v,e)^T, and with equal weights the outputs swap.
        np.testing.assert_allclose(v1.numpy(), e2.numpy(), rtol=1e-10)
        np.testing.assert_allclose(e1.numpy(), v2.numpy(), rtol=1e-10)


class TestMKREndToEnd:
    def test_item_latent_uses_alignment(self, split):
        train, __ = split
        model = MKR(epochs=1, num_layers=1, seed=0).fit(train)
        items = np.asarray([0, 1])
        v = model.item.weight.data[items]
        e = model.entity.weight.data[train.item_entities[items]]
        expected_v, __ = model.cross[0](Tensor(v), Tensor(e))
        actual = model._item_latent(items)
        np.testing.assert_allclose(actual.numpy(), expected_v.numpy(), rtol=1e-10)
