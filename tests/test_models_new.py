"""Behavioral tests for entity2rec, ECFKG, BEM, and AKGE."""

import numpy as np
import pytest

from repro.core.splitter import random_split
from repro.data import make_movie_dataset
from repro.eval.explain import is_valid_explanation
from repro.models.embedding_based import BEM, ECFKG, Entity2Rec
from repro.models.unified import AKGE


@pytest.fixture(scope="module")
def split():
    data = make_movie_dataset(seed=9, num_users=30, num_items=50)
    return random_split(data, seed=9)


class TestEntity2Rec:
    def test_property_weights_per_relation(self, split):
        train, __ = split
        model = Entity2Rec(
            num_walks=2, sgns_epochs=1, rank_epochs=5, seed=0
        ).fit(train)
        # One feature per property that produced walks (interact + attrs).
        assert model.property_weights.size == len(model._features)
        assert model.property_weights.size >= 2

    def test_scores_finite(self, split):
        train, __ = split
        model = Entity2Rec(num_walks=2, sgns_epochs=1, rank_epochs=3, seed=0).fit(train)
        assert np.isfinite(model.score_all(0)).all()


class TestECFKG:
    def test_explanations_are_soft_matched_paths(self, split):
        train, __ = split
        model = ECFKG(epochs=8, seed=0).fit(train)
        found = False
        for item in model.recommend(0, k=5):
            explanations = model.explain(0, int(item))
            for expl in explanations:
                found = True
                assert expl.kind == "soft-matching"
                assert is_valid_explanation(expl, model.explanation_dataset)
                assert expl.score >= 0.0
        assert found

    def test_explanations_sorted_by_consistency(self, split):
        train, __ = split
        model = ECFKG(epochs=8, seed=0).fit(train)
        item = int(model.recommend(0, k=1)[0])
        scores = [e.score for e in model.explain(0, item)]
        assert scores == sorted(scores, reverse=True)


class TestBEM:
    def test_embeddings_refined_toward_each_other(self, split):
        train, __ = split
        base = BEM(kge_epochs=5, refine_rounds=0, seed=0).fit(train)
        refined = BEM(kge_epochs=5, refine_rounds=3, seed=0).fit(train)

        def misalignment(model):
            k, b = model.knowledge_emb, model.behavior_emb
            w = BEM._least_squares_map(b, k)
            return float(((b @ w - k) ** 2).mean())

        assert misalignment(refined) <= misalignment(base) + 1e-9

    def test_ppmi_svd_dim(self):
        co = np.random.default_rng(0).random((10, 10))
        emb = BEM._ppmi_svd(co, dim=4)
        assert emb.shape == (10, 4)

    def test_empty_history_user_scores_zero(self, split):
        train, __ = split
        model = BEM(kge_epochs=3, seed=0).fit(train)
        # Fabricate: user with no history would return zeros; emulate by
        # checking the code path through a user with history is nonzero.
        assert np.abs(model.score_all(0)).sum() > 0


class TestAKGE:
    def test_subgraph_contains_endpoints(self, split):
        train, __ = split
        model = AKGE(epochs=1, pretrain_epochs=2, seed=0).fit(train)
        nodes, adj = model._subgraph(0, 5)
        assert nodes[0] == int(model._lifted.user_entities[0])
        assert nodes[1] == int(model._lifted.item_entities[5])
        assert adj.shape == (nodes.size, nodes.size)
        # Adjacency is symmetric with a self-loop diagonal.
        np.testing.assert_allclose(adj, adj.T)
        assert (np.diag(adj) == 1.0).all()

    def test_subgraph_edges_exist_in_graph(self, split):
        train, __ = split
        model = AKGE(epochs=1, pretrain_epochs=2, seed=0).fit(train)
        kg = model._lifted.kg
        nodes, adj = model._subgraph(1, 3)
        for i in range(nodes.size):
            for j in range(i + 1, nodes.size):
                if adj[i, j]:
                    a, b = int(nodes[i]), int(nodes[j])
                    linked = any(n == b for __, n in kg.neighbors(a))
                    assert linked

    def test_scores_finite(self, split):
        train, __ = split
        model = AKGE(epochs=1, pretrain_epochs=2, seed=0).fit(train)
        assert np.isfinite(model.score_all(0)).all()
