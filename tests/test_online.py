"""Tests for the online learning loop (`repro.online`).

Covers the stream's determinism and churn events, the shadow trainer's
typed admission checks and sparse-row updates, the loop's quarantine /
commit / promote / rollback mechanics, the full seeded churn matrix,
and the freshness semantics the survey's dynamic direction
(`repro.extensions.dynamic`) assumes: a newly-appended entity becomes
scoreable after one incremental update while every untouched row stays
bitwise unperturbed.
"""

import numpy as np
import pytest

from repro.core.clock import ManualClock
from repro.core.exceptions import (
    ConfigError,
    IndexStaleError,
    OnlineError,
    OnlineUpdateError,
    PromotionError,
)
from repro.runtime.faults import (
    ONLINE_FAULT_KINDS,
    Fault,
    FaultPlan,
    InjectedCrash,
)
from repro.serving.registry import ModelRegistry
from repro.store.mmap import MmapShardStore
from repro.telemetry import (
    Telemetry,
    read_jsonl,
    render_trace_report,
    write_jsonl,
)
from repro.online import (
    ChaosCandidate,
    ENTITY_TABLE,
    InteractionStream,
    ManifestCrashIO,
    ShadowTrainer,
    StreamConfig,
    make_candidate,
)
from repro.online.harness import (
    ChurnConfig,
    SERVE_STATUSES,
    build_world,
    default_plan_for,
    freshness_report,
    run_churn_cell,
    run_churn_matrix,
)

#: Small-but-real scenario: fast enough for unit tests, still crossing
#: several commit cycles and introducing newcomers.
SMALL = ChurnConfig(num_batches=32)


# ---------------------------------------------------------------------- #
# interaction stream
# ---------------------------------------------------------------------- #
class TestInteractionStream:
    def test_replay_is_deterministic(self):
        def traces(seed):
            stream = InteractionStream(clock=ManualClock(), seed=seed)
            return [stream.next_batch().trace() for __ in range(40)]

        assert traces(3) == traces(3)
        assert traces(3) != traces(4)

    def test_newcomers_and_new_items_are_recorded(self):
        stream = InteractionStream(clock=ManualClock(), seed=0)
        c = stream.config
        for __ in range(200):
            batch = stream.next_batch()
            for user in batch.new_users:
                assert user >= c.warm_users
            for item in batch.new_items:
                # The introducing session must interact with the item,
                # or it could never be learned from its first appearance.
                assert item in batch.items.tolist()
        assert stream.introduced_users  # churn actually happened
        assert stream.introduced_items
        # Capacity is a hard bound: ids never exceed the allocated table.
        assert stream.seen_users <= c.num_users
        assert stream.seen_items <= c.num_items
        # Introduction order is dense and sequential.
        newcomer_ids = [u for (__, u) in stream.introduced_users]
        assert newcomer_ids == list(
            range(c.warm_users, c.warm_users + len(newcomer_ids))
        )

    def test_clock_advances_per_batch(self):
        clock = ManualClock()
        stream = InteractionStream(clock=clock, seed=0)
        stream.next_batch()
        stream.next_batch()
        assert clock() == pytest.approx(2 * stream.config.arrival_gap)

    def test_requires_advanceable_clock(self):
        import time

        with pytest.raises(ConfigError, match="advance"):
            InteractionStream(clock=time.monotonic, seed=0)

    def test_warm_interactions_do_not_perturb_arrivals(self):
        a = InteractionStream(clock=ManualClock(), seed=7)
        b = InteractionStream(clock=ManualClock(), seed=7)
        a.warm_interactions()  # only b consumes the warm history later
        first_a = [a.next_batch().trace() for __ in range(10)]
        first_b = [b.next_batch().trace() for __ in range(10)]
        b.warm_interactions()
        assert first_a == first_b

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warm_users": 0},
            {"warm_users": 99, "num_users": 48},
            {"session_size": 0},
            {"newcomer_rate": 1.5},
            {"arrival_gap": -1.0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigError):
            StreamConfig(**kwargs)


# ---------------------------------------------------------------------- #
# shadow trainer
# ---------------------------------------------------------------------- #
@pytest.fixture()
def trainer(tmp_path):
    trainer, generation = ShadowTrainer.bootstrap(
        tmp_path / "store", num_users=12, num_items=30, dim=6, seed=0,
        rows_per_shard=8, io=ManifestCrashIO(),
    )
    assert generation == 1
    yield trainer
    trainer.store.close()


class TestShadowTrainer:
    def test_bootstrap_commits_the_init(self, trainer, tmp_path):
        store = MmapShardStore.open(tmp_path / "store", mode="serve")
        on_disk = np.ascontiguousarray(
            store.table(ENTITY_TABLE).to_array(), dtype="<f4"
        ).tobytes()
        store.close()
        assert on_disk == trainer.table_bytes()

    @pytest.mark.parametrize(
        "users, items, weights, match",
        [
            ([0], [1, 2], [1.0], "length mismatch"),
            ([], [], [], "empty"),
            ([0.5], [1], [1.0], "integers"),
            ([0], [1], [np.nan], "not finite"),
            ([0], [1], [-1.0], "negative"),
            ([99], [1], [1.0], "user ids outside"),
            ([0], [99], [1.0], "item ids outside"),
            ([0], [-3], [1.0], "item ids outside"),
        ],
    )
    def test_poisoned_batches_raise_typed(
        self, trainer, users, items, weights, match
    ):
        before = trainer.table_bytes()
        with pytest.raises(OnlineUpdateError, match=match):
            trainer.apply(
                np.asarray(users), np.asarray(items),
                np.asarray(weights, dtype=np.float64),
            )
        # Quarantine means *untouched*: rejection precedes any update.
        assert trainer.table_bytes() == before
        assert trainer.batches_quarantined > 0
        assert trainer.dirty_rows() == 0

    def test_apply_touches_exactly_the_reported_rows(self, trainer):
        before = np.frombuffer(trainer.table_bytes(), dtype="<f4").reshape(
            trainer.num_users + trainer.num_items, trainer.dim
        )
        users = np.asarray([2, 5])
        items = np.asarray([7, 11])
        touched = trainer.apply(users, items, np.ones(2))
        after = np.frombuffer(trainer.table_bytes(), dtype="<f4").reshape(
            before.shape
        )
        assert np.all(np.diff(touched) > 0)  # sorted, unique
        for row in (2, 5, trainer.num_users + 7, trainer.num_users + 11):
            assert row in touched
        untouched = np.setdiff1d(np.arange(before.shape[0]), touched)
        assert np.array_equal(before[untouched], after[untouched])
        assert not np.array_equal(before[touched], after[touched])
        assert trainer.dirty_rows() == touched.size

    def test_commit_persists_exact_bytes(self, trainer, tmp_path):
        trainer.apply(np.asarray([0, 1]), np.asarray([3, 4]), np.ones(2))
        generation = trainer.commit(tag="t")
        assert generation == 2
        store = MmapShardStore.open(
            tmp_path / "store", mode="serve", generation=generation
        )
        on_disk = np.ascontiguousarray(
            store.table(ENTITY_TABLE).to_array(), dtype="<f4"
        ).tobytes()
        store.close()
        assert on_disk == trainer.table_bytes()

    def test_manifest_crash_recovers_previous_generation(
        self, trainer, tmp_path
    ):
        bootstrap_bytes = trainer.table_bytes()
        trainer.apply(np.asarray([0]), np.asarray([0]), np.ones(1))
        trainer.store.io.arm_manifest_crash()
        with pytest.raises(InjectedCrash, match="manifest"):
            trainer.commit(tag="doomed")
        trainer.store.close()
        # The new generation's shards may be durable, but the manifest
        # rename never happened: reopening serves the bootstrap bytes.
        store = MmapShardStore.open(tmp_path / "store", mode="serve")
        assert store.generation == 1
        recovered = np.ascontiguousarray(
            store.table(ENTITY_TABLE).to_array(), dtype="<f4"
        ).tobytes()
        store.close()
        assert recovered == bootstrap_bytes

    def test_config_validation(self, tmp_path):
        store = MmapShardStore.create(tmp_path / "s2", rows_per_shard=8)
        try:
            with pytest.raises(ConfigError, match="lr"):
                ShadowTrainer(store, 4, 4, lr=0.0)
            with pytest.raises(ConfigError, match="epochs"):
                ShadowTrainer(store, 4, 4, epochs=0)
        finally:
            store.close()
        serve = None
        trainer2, __ = ShadowTrainer.bootstrap(tmp_path / "s3", 4, 4)
        trainer2.store.close()
        try:
            serve = MmapShardStore.open(tmp_path / "s3", mode="serve")
            with pytest.raises(ConfigError, match="train-mode"):
                ShadowTrainer(serve, 4, 4)
        finally:
            if serve is not None:
                serve.close()


# ---------------------------------------------------------------------- #
# dynamic freshness semantics (ties repro.extensions.dynamic to the loop)
# ---------------------------------------------------------------------- #
class TestDynamicFreshnessSemantics:
    """The survey's dynamic direction, made operational.

    `repro.extensions.dynamic` models drifting preferences offline; the
    online loop is what serves them.  The contract tested here is the
    freshness semantics both rely on: an entity appended mid-stream
    (newcomer user, new catalog item) must become scoreable after one
    incremental update, and that update must not perturb any other row
    bitwise.
    """

    NUM_USERS, NUM_ITEMS, WARM_USERS = 12, 30, 8

    @pytest.fixture()
    def world(self, tmp_path):
        trainer, generation = ShadowTrainer.bootstrap(
            tmp_path / "store", self.NUM_USERS, self.NUM_ITEMS,
            dim=6, seed=0, rows_per_shard=8,
        )
        # Warm history over the existing population.
        rng = np.random.default_rng(0)
        users = rng.integers(self.WARM_USERS, size=24)
        items = rng.integers(20, size=24)
        trainer.apply(users, items, np.ones(users.size))
        generation = trainer.commit(tag="warm")
        yield tmp_path / "store", trainer, generation
        trainer.store.close()

    def test_new_entity_scoreable_after_one_update(self, world):
        store_dir, trainer, generation = world
        new_user = self.WARM_USERS  # first id beyond the warm population
        new_item = 25
        item_row = trainer.num_users + new_item

        def pair_score():
            return float(trainer.entity[new_user] @ trainer.entity[item_row])

        before_bytes = np.frombuffer(
            trainer.table_bytes(), dtype="<f4"
        ).reshape(trainer.num_users + trainer.num_items, trainer.dim)
        before_score = pair_score()

        touched = trainer.apply(
            np.asarray([new_user]), np.asarray([new_item]), np.ones(1)
        )

        # The appended entities' rows were the ones updated...
        assert new_user in touched
        assert item_row in touched
        # ...the interaction is now reflected in the learned geometry...
        assert pair_score() > before_score
        # ...and every untouched row is bitwise unperturbed.
        after_bytes = np.frombuffer(
            trainer.table_bytes(), dtype="<f4"
        ).reshape(before_bytes.shape)
        untouched = np.setdiff1d(
            np.arange(before_bytes.shape[0]), touched
        )
        assert np.array_equal(before_bytes[untouched], after_bytes[untouched])

    def test_served_candidate_reflects_the_update(self, world):
        store_dir, trainer, __ = world
        new_user = self.WARM_USERS
        new_item = 25

        from repro.core.dataset import Dataset
        from repro.core.interactions import InteractionMatrix

        dataset = Dataset(
            name="dyn",
            interactions=InteractionMatrix(
                np.asarray([0, 1, 2]), np.asarray([0, 1, 2]),
                self.NUM_USERS, self.NUM_ITEMS,
            ),
        )

        def rank_of_item(generation):
            keep = []
            candidate = make_candidate(
                store_dir, dataset, self.NUM_USERS, self.NUM_ITEMS,
                generation, keep=keep,
            )
            scores = np.asarray(candidate.score_all(new_user))
            for store in keep:
                store.close()
            assert scores.shape == (self.NUM_ITEMS,)
            assert np.all(np.isfinite(scores))
            order = np.argsort(-scores, kind="stable")
            return int(np.where(order == new_item)[0][0])

        frozen_generation = trainer.store.generation
        rank_frozen = rank_of_item(frozen_generation)
        for __ in range(3):  # a few sessions: the pair should dominate
            trainer.apply(
                np.asarray([new_user]), np.asarray([new_item]), np.ones(1)
            )
        fresh_generation = trainer.commit(tag="fresh")
        rank_fresh = rank_of_item(fresh_generation)
        assert rank_fresh < rank_frozen  # the interacted item moved up
        assert rank_fresh < 5


# ---------------------------------------------------------------------- #
# the loop: quarantine, cadence, typed outcomes
# ---------------------------------------------------------------------- #
class TestOnlineLoop:
    def test_fault_free_cadence_and_bookkeeping(self, tmp_path):
        world = build_world(tmp_path, seed=0, plan=FaultPlan(), config=SMALL)
        world.loop.run(SMALL.num_batches)
        loop = world.loop
        assert len(loop.batch_outcomes) == SMALL.num_batches
        assert all(b.status == "applied" for b in loop.batch_outcomes)
        # One cycle per commit_every applied batches, on the right steps.
        expected = SMALL.num_batches // SMALL.commit_every
        assert len(loop.cycles) == expected
        assert [c.step for c in loop.cycles] == [
            k * SMALL.commit_every - 1 for k in range(1, expected + 1)
        ]
        assert {c.outcome for c in loop.cycles} <= {"promoted", "skipped"}
        # The served generation is the newest committed one, bitwise.
        assert loop.live_generation() == max(loop.committed)
        # Applied interactions were recorded for the freshness metric.
        assert loop.applied_interactions
        assert all(
            status.split("|")[2] in SERVE_STATUSES
            for status in loop.watch_traces
        )
        world.loop.close()

    def test_consecutive_quarantines_bounded(self, tmp_path):
        # quarantine_limit=2: two consecutive poisons are absorbed, a
        # third consecutive one halts the loop with OnlineError.
        plan = FaultPlan(
            [Fault(step=s, kind="poison_batch") for s in (4, 5, 6)]
        )
        world = build_world(tmp_path, seed=0, plan=plan, config=SMALL)
        with pytest.raises(OnlineError, match="consecutive"):
            world.loop.run(SMALL.num_batches)
        quarantined = [
            b for b in world.loop.batch_outcomes if b.status == "quarantined"
        ]
        assert len(quarantined) == 3
        assert all("OnlineUpdateError" in b.error for b in quarantined)
        world.loop.close()

    def test_interleaved_quarantines_are_absorbed(self, tmp_path):
        # Non-consecutive poisons never trip the bound, however many.
        plan = FaultPlan(
            [Fault(step=s, kind="poison_batch") for s in (4, 6, 8, 10)]
        )
        world = build_world(tmp_path, seed=0, plan=plan, config=SMALL)
        world.loop.run(SMALL.num_batches)
        quarantined = [
            b for b in world.loop.batch_outcomes if b.status == "quarantined"
        ]
        assert len(quarantined) == 4
        world.loop.close()

    def test_loop_config_validation(self, tmp_path):
        world = build_world(tmp_path, seed=0, plan=FaultPlan(), config=SMALL)
        from repro.online import OnlineLoop

        with pytest.raises(ConfigError):
            OnlineLoop(
                world.stream, world.trainer, world.service, commit_every=0
            )
        with pytest.raises(ConfigError):
            OnlineLoop(
                world.stream, world.trainer, world.service,
                quarantine_limit=-1,
            )
        world.loop.close()


# ---------------------------------------------------------------------- #
# chaos candidate
# ---------------------------------------------------------------------- #
class TestChaosCandidate:
    class _Inner:
        generation = 7
        supports_candidates = True

        def sync_index(self, force=False):
            return 7

        def score_candidates(self, user_id, k=None):
            return np.arange(3), np.asarray([3.0, 2.0, 1.0])

        def score_all(self, user_id):
            return np.asarray([3.0, 2.0, 1.0])

    def test_mode_validation(self):
        with pytest.raises(ConfigError, match="regress"):
            ChaosCandidate(self._Inner(), regress="sometimes")

    def test_sync_fail(self):
        chaos = ChaosCandidate(self._Inner(), fail_sync=True)
        with pytest.raises(IndexStaleError):
            chaos.sync_index()

    def test_canary_mode_poisons_immediately(self):
        chaos = ChaosCandidate(self._Inner(), regress="canary")
        __, scores = chaos.score_candidates(0)
        assert np.all(np.isnan(scores))

    def test_late_mode_poisons_only_after_arm(self):
        chaos = ChaosCandidate(self._Inner(), regress="late")
        assert np.all(np.isfinite(chaos.score_all(0)))
        chaos.arm()
        assert np.all(np.isnan(chaos.score_all(0)))
        # Attribute forwarding + pinned generation survive the wrapper.
        assert chaos.generation == 7
        assert chaos.supports_candidates


# ---------------------------------------------------------------------- #
# churn matrix: every fault kind, full safety contract
# ---------------------------------------------------------------------- #
class TestChurnMatrix:
    def test_every_kind_passes_for_seed_zero(self, tmp_path):
        cells = run_churn_matrix(tmp_path, seed=0, config=SMALL)
        assert [c.kind for c in cells] == ["none", *ONLINE_FAULT_KINDS]
        for cell in cells:
            assert cell.ok, cell.describe()
        by_kind = {c.kind: c for c in cells}
        assert by_kind["poison_batch"].quarantined == 2
        assert by_kind["commit_crash"].crashed
        assert by_kind["sync_fail"].rejected >= 1
        assert by_kind["canary_regress"].rejected >= 1
        assert by_kind["late_regress"].rolled_back >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown online fault kind"):
            default_plan_for("gremlins", SMALL)

    def test_fault_free_replay_is_deterministic(self, tmp_path):
        def trace(run):
            world = build_world(
                tmp_path / run, seed=1, plan=FaultPlan(), config=SMALL
            )
            world.loop.run(SMALL.num_batches)
            out = (
                [b.trace() for b in world.loop.batch_outcomes]
                + [c.trace() for c in world.loop.cycles]
                + list(world.loop.watch_traces)
            )
            world.loop.close()
            return out

        assert trace("a") == trace("b")

    def test_freshness_beats_frozen_baseline(self, tmp_path):
        config = ChurnConfig(num_batches=48)
        world = build_world(tmp_path, seed=0, plan=FaultPlan(), config=config)
        world.loop.run(config.num_batches)
        fresh = freshness_report(world)
        assert fresh["newcomer_users"] > 0
        assert fresh["hit_rate_online"] > fresh["hit_rate_frozen"]
        assert fresh["freshness_uplift"] > 0.2
        world.loop.close()

    def test_rolled_back_generation_is_not_served(self, tmp_path):
        plan = default_plan_for("late_regress", SMALL)
        world = build_world(tmp_path, seed=0, plan=plan, config=SMALL)
        world.loop.run(SMALL.num_batches)
        loop = world.loop
        rolled = [c for c in loop.cycles if c.outcome == "rolled_back"]
        assert len(rolled) == 1
        # The regressed generation was committed (it is durable on disk)
        # but rollback means it never stayed live — and later healthy
        # cycles promoted past it.
        assert rolled[0].generation in loop.committed
        assert loop.live_generation() != rolled[0].generation
        assert "post_promotion_regression" in str(
            world.service.registry.history
        )
        world.loop.close()


# ---------------------------------------------------------------------- #
# structured promotion rejections (registry + trace-report surfacing)
# ---------------------------------------------------------------------- #
class TestPromotionRecordStructure:
    class _Good:
        generation = 3

        def score_all(self, user_id):
            return np.arange(10, dtype=np.float64)

    class _SyncBroken(_Good):
        def sync_index(self, force=False):
            raise IndexStaleError("segment vanished")

    class _NaN(_Good):
        generation = 4

        def score_all(self, user_id):
            return np.full(10, np.nan)

    def test_index_sync_rejection_is_structured(self):
        reg = ModelRegistry(10, clock=ManualClock())
        with pytest.raises(PromotionError, match="index sync failed"):
            reg.promote("cand", self._SyncBroken(), canary_users=range(3))
        record = reg.history[-1]
        assert not record.promoted
        assert record.kind == "promote"
        assert record.rejection == "index_sync:IndexStaleError"
        assert record.generation == 3
        assert "[index_sync:IndexStaleError]" in record.describe()

    def test_canary_rejection_is_structured(self):
        reg = ModelRegistry(10, clock=ManualClock())
        reg.promote("good", self._Good(), canary_users=range(3))
        with pytest.raises(PromotionError, match="canary"):
            reg.promote("bad", self._NaN(), canary_users=range(3))
        record = reg.history[-1]
        assert record.rejection == "canary"
        assert record.reports  # per-user score reports ride along
        assert reg.live_name == "good"

    def test_rollback_leaves_a_structured_record(self):
        reg = ModelRegistry(10, clock=ManualClock())
        reg.promote("a", self._Good(), canary_users=range(3))
        reg.promote("b", self._Good(), canary_users=range(3))
        assert reg.rollback(cause="post_promotion_regression") == "a"
        record = reg.history[-1]
        assert record.kind == "rollback"
        assert record.rejection == "rollback:post_promotion_regression"
        assert "ROLLED BACK" in record.describe()
        assert "[rollback:post_promotion_regression]" in record.describe()

    def test_trace_report_tallies_break_down_by_cause(self, tmp_path):
        clock = ManualClock()
        tel = Telemetry(clock=clock)
        reg = ModelRegistry(10, clock=clock, telemetry=tel)
        reg.promote("good", self._Good(), canary_users=range(3))
        with pytest.raises(PromotionError):
            reg.promote("sync", self._SyncBroken(), canary_users=range(3))
        with pytest.raises(PromotionError):
            reg.promote("nan", self._NaN(), canary_users=range(3))
        reg.promote("next", self._Good(), canary_users=range(3))
        reg.rollback(cause="post_promotion_regression")
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tel)
        text = render_trace_report(read_jsonl(path))
        # The outcome tally splits rejections by their structured cause.
        assert "rejected[index_sync:IndexStaleError]" in text
        assert "rejected[canary]" in text
        assert "rolled_back[rollback:post_promotion_regression]" in text
        assert "promoted=2" in text
