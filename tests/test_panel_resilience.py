"""Fault isolation, retries, budgets, and degradation in ``run_panel``."""

import itertools

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.recommender import Recommender
from repro.experiments.harness import (
    FailureRecord,
    PanelResult,
    results_table,
    run_panel,
)
from repro.kg.triples import TripleStore
from repro.kge import TransE
from repro.models.baselines import MostPopular, Random
from repro.runtime import (
    Fault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TrainingRuntime,
)


class Crashes(Recommender):
    """Raises during fit (optionally only the first ``fail_times`` calls)."""

    attempts = itertools.count()  # class-level so fresh factory builds share it

    def __init__(self, fail_times: int | None = None) -> None:
        super().__init__()
        self._fail_times = fail_times

    def fit(self, dataset: Dataset) -> "Crashes":
        n = next(type(self).attempts)
        if self._fail_times is None or n < self._fail_times:
            raise RuntimeError("model exploded during fit")
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        return np.zeros(self.fitted_dataset.num_items)


class BadScorer(Recommender):
    """Fits fine, crashes at evaluation time."""

    def fit(self, dataset: Dataset) -> "BadScorer":
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        raise ValueError("scores unavailable")


class KGEBacked(Recommender):
    """A gradient-trained panel entry: TransE over the dataset's KG.

    Scores items by proximity of their entity embedding to the centroid of
    the user's training items — crude, but exercises a real autograd +
    optimizer loop inside the panel, which is what the fault injector and
    the ``skip_nonfinite`` guard need.
    """

    requires_kg = True

    def __init__(self, injector: FaultInjector | None = None, epochs: int = 2) -> None:
        super().__init__()
        self._injector = injector
        self._epochs = epochs
        self._item_emb: np.ndarray | None = None

    def fit(self, dataset: Dataset) -> "KGEBacked":
        store: TripleStore = dataset.kg.store
        model = TransE(dataset.kg.num_entities, dataset.kg.num_relations,
                       dim=6, seed=0)
        model.fit(
            store, epochs=self._epochs, seed=0,
            runtime=TrainingRuntime(faults=self._injector),
            skip_nonfinite="skip",
        )
        self._item_emb = model.entity_embeddings()[dataset.item_entities]
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        items = self.fitted_dataset.interactions.items_of(user_id)
        centroid = (
            self._item_emb[items].mean(axis=0)
            if items.size
            else self._item_emb.mean(axis=0)
        )
        return -np.linalg.norm(self._item_emb - centroid, axis=1)


@pytest.fixture(autouse=True)
def _reset_crash_counter():
    Crashes.attempts = itertools.count()


class TestIsolation:
    def test_failure_becomes_record_not_crash(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular(), "boom": lambda: Crashes()},
            max_users=8,
            seed=0,
        )
        assert isinstance(panel, PanelResult)
        assert [r.model for r in panel] == ["pop"]
        assert len(panel.failures) == 1
        record = panel.failures[0]
        assert record.model == "boom"
        assert record.phase == "fit"
        assert record.error_type == "RuntimeError"
        assert "exploded" in record.message
        assert "RuntimeError" in record.traceback
        assert not panel.ok

    def test_evaluate_phase_failure_recorded(self, movie_dataset):
        panel = run_panel(
            movie_dataset, {"bad": lambda: BadScorer()}, max_users=8, seed=0
        )
        assert panel.failures[0].phase == "evaluate"
        assert panel.failures[0].error_type == "ValueError"

    def test_isolate_false_propagates_with_model_name(self, movie_dataset):
        with pytest.raises(RuntimeError) as excinfo:
            run_panel(
                movie_dataset,
                {"pop": lambda: MostPopular(), "boom": lambda: Crashes()},
                max_users=8,
                seed=0,
                isolate=False,
            )
        assert any("'boom'" in note for note in excinfo.value.__notes__)

    def test_healthy_panel_matches_legacy_behavior(self, movie_dataset):
        panel = run_panel(
            movie_dataset, {"pop": lambda: MostPopular()}, max_users=8, seed=0
        )
        assert panel.ok
        assert panel.failures == []
        assert len(panel) == 1


class TestRetryAndBudget:
    def test_flaky_model_recovers_with_retry(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"flaky": lambda: Crashes(fail_times=2)},
            max_users=8,
            seed=0,
            retry=3,
        )
        assert panel.ok
        assert [r.model for r in panel] == ["flaky"]

    def test_attempt_count_recorded_on_exhaustion(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"boom": lambda: Crashes()},
            max_users=8,
            seed=0,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                              sleep=lambda s: None),
        )
        assert panel.failures[0].attempts == 3

    def test_time_budget_exceeded(self, movie_dataset):
        ticks = itertools.count(step=30.0)
        panel = run_panel(
            movie_dataset,
            {"slow": lambda: MostPopular()},
            max_users=8,
            seed=0,
            time_budget=10.0,
            clock=lambda: float(next(ticks)),
        )
        assert panel.failures[0].error_type == "TimeBudgetExceeded"
        assert list(panel) == []


class TestDegradation:
    def test_registered_fallback_substitutes_row(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular(), "boom": lambda: Crashes()},
            max_users=8,
            seed=0,
            fallback="MostPopular",
        )
        names = [r.model for r in panel]
        assert names == ["pop", "boom (fallback: MostPopular)"]
        assert panel.failures[0].fallback == "boom (fallback: MostPopular)"
        # The fallback row really is MostPopular evaluated on the same split.
        assert panel[1].values == panel[0].values

    def test_callable_fallback(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"boom": lambda: Crashes()},
            max_users=8,
            seed=0,
            fallback=lambda: Random(seed=0),
        )
        assert len(panel) == 1
        assert "fallback" in panel[0].model


class TestFailureTable:
    def test_failures_render_in_results_table(self, movie_dataset):
        panel = run_panel(
            movie_dataset,
            {"pop": lambda: MostPopular(), "boom": lambda: Crashes()},
            max_users=8,
            seed=0,
        )
        text = results_table(panel, columns=("AUC", "NDCG@10"))
        assert "FAILED (fit: RuntimeError)" in text
        assert "Failures:" in text
        assert "boom" in text

    def test_plain_list_still_renders(self, movie_dataset):
        results = list(
            run_panel(movie_dataset, {"pop": lambda: MostPopular()},
                      max_users=8, seed=0)
        )
        text = results_table(results, columns=("AUC",))
        assert "Failures:" not in text


class TestAcceptancePanel:
    def test_mixed_fault_panel_completes_end_to_end(self, movie_dataset):
        """ISSUE 1 acceptance: 4+ models, one raising, one with NaN gradients.

        The panel must finish, return rows for every healthy model, keep a
        structured record (plus a fallback row) for the crashed one, and the
        NaN-injected gradient model must survive via the skip policy.
        """
        nan_injector = FaultInjector(
            FaultPlan([Fault(step=0, kind="nan_grad"),
                       Fault(step=1, kind="nan_grad")])
        )
        panel = run_panel(
            movie_dataset,
            {
                "MostPopular": lambda: MostPopular(),
                "Random": lambda: Random(seed=0),
                "KGE-NaN": lambda: KGEBacked(injector=nan_injector),
                "Crasher": lambda: Crashes(),
            },
            max_users=8,
            seed=0,
            retry=2,
            fallback="MostPopular",
        )
        names = [r.model for r in panel]
        assert names == [
            "MostPopular",
            "Random",
            "KGE-NaN",
            "Crasher (fallback: MostPopular)",
        ]
        assert len(panel.failures) == 1
        record = panel.failures[0]
        assert record.model == "Crasher"
        assert record.attempts == 2
        assert record.fallback == "Crasher (fallback: MostPopular)"
        # NaN faults really fired and were survived.
        assert len(nan_injector.injected) >= 2
        assert np.isfinite(panel[2].values["AUC"])
        text = results_table(panel)
        assert "FAILED" in text
