"""Process-pool panel executor: row equivalence, crash isolation, telemetry.

The contract under test is strict: ``run_panel(executor="process")`` must
produce *row-for-row identical* results to the sequential executor for the
same seed — successes, failures, fallback substitutions, retry outcomes,
and time-budget enforcement included — because both executors run the same
``_execute_entry`` code path over a split computed once in the parent.
"""

import itertools
import os

import numpy as np
import pytest

from repro.core.dataset import Dataset
from repro.core.exceptions import ConfigError
from repro.core.recommender import Recommender
from repro.experiments.harness import run_panel, results_table
from repro.experiments.parallel import derive_entry_seed, fork_available
from repro.models.baselines import BPRMF, MostPopular, Random
from repro.runtime import RetryPolicy
from repro.telemetry import Telemetry
from repro.telemetry.export import export_records, validate_records

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process executor needs fork"
)


class Boom(Recommender):
    """Always raises during fit."""

    def fit(self, dataset: Dataset) -> "Boom":
        raise RuntimeError("model exploded during fit")

    def score_all(self, user_id: int) -> np.ndarray:  # pragma: no cover
        return np.zeros(self.fitted_dataset.num_items)


class Flaky(Recommender):
    """Fails the first ``fail_times`` fit calls (per-process counter)."""

    attempts = itertools.count()

    def __init__(self, fail_times: int = 1) -> None:
        super().__init__()
        self._fail_times = fail_times

    def fit(self, dataset: Dataset) -> "Flaky":
        if next(type(self).attempts) < self._fail_times:
            raise RuntimeError("transient failure")
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        return np.zeros(self.fitted_dataset.num_items)


class SlowFit(Recommender):
    """Advances the injected clock by ``cost`` during fit."""

    def __init__(self, ticker, cost: float) -> None:
        super().__init__()
        self._ticker = ticker
        self._cost = cost

    def fit(self, dataset: Dataset) -> "SlowFit":
        self._ticker.advance(self._cost)
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id: int) -> np.ndarray:
        return np.zeros(self.fitted_dataset.num_items)


class Dies(Recommender):
    """Kills the worker process outright (no exception to pickle back)."""

    def fit(self, dataset: Dataset) -> "Dies":
        os._exit(17)

    def score_all(self, user_id: int) -> np.ndarray:  # pragma: no cover
        return np.zeros(self.fitted_dataset.num_items)


class Ticker:
    """Deterministic manual clock shared through fork inheritance."""

    def __init__(self) -> None:
        self.now = 0.0

    def clock(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _row_key(r):
    return (r.model, tuple(sorted(r.values.items())))


def _failure_key(f):
    return (f.model, f.phase, f.error_type, f.message, f.attempts, f.fallback)


def _run_both(dataset, factories, **kwargs):
    seq = run_panel(dataset, factories, max_users=10, seed=0, **kwargs)
    par = run_panel(
        dataset, factories, max_users=10, seed=0,
        executor="process", max_workers=2, **kwargs,
    )
    return seq, par


class TestEquivalence:
    def test_rows_identical_to_sequential(self, movie_dataset):
        factories = {
            "pop": lambda: MostPopular(),
            "rand": lambda: Random(seed=3),
            "bpr": lambda: BPRMF(epochs=4, seed=1),
        }
        seq, par = _run_both(movie_dataset, factories)
        assert [_row_key(r) for r in par] == [_row_key(r) for r in seq]
        assert seq.ok and par.ok
        assert results_table(par) == results_table(seq)

    def test_failures_and_fallback_identical(self, movie_dataset):
        factories = {
            "pop": lambda: MostPopular(),
            "boom": lambda: Boom(),
            "bpr": lambda: BPRMF(epochs=4, seed=1),
        }
        seq, par = _run_both(movie_dataset, factories, fallback="MostPopular")
        assert [_row_key(r) for r in par] == [_row_key(r) for r in seq]
        assert [r.model for r in par] == [
            "pop", "boom (fallback: MostPopular)", "bpr",
        ]
        assert [_failure_key(f) for f in par.failures] == [
            _failure_key(f) for f in seq.failures
        ]
        assert par.failures[0].fallback == "boom (fallback: MostPopular)"
        assert "RuntimeError" in par.failures[0].traceback

    def test_retry_then_success_identical(self, movie_dataset):
        factories = {"flaky": lambda: Flaky(fail_times=1)}
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

        Flaky.attempts = itertools.count()
        seq = run_panel(movie_dataset, factories, max_users=10, seed=0,
                        retry=policy)
        Flaky.attempts = itertools.count()
        # The worker forks *after* the reset, so the child's counter starts
        # from the same state the sequential run saw.
        par = run_panel(movie_dataset, factories, max_users=10, seed=0,
                        retry=policy, executor="process", max_workers=2)
        assert [_row_key(r) for r in par] == [_row_key(r) for r in seq]
        assert seq.ok and par.ok

    def test_time_budget_exceeded_identical(self, movie_dataset):
        def build(ticker):
            return {
                "slow": lambda: SlowFit(ticker, cost=45.0),
                "quick": lambda: SlowFit(ticker, cost=1.0),
            }

        t1, t2 = Ticker(), Ticker()
        seq = run_panel(movie_dataset, build(t1), max_users=10, seed=0,
                        time_budget=30.0, clock=t1.clock)
        par = run_panel(movie_dataset, build(t2), max_users=10, seed=0,
                        time_budget=30.0, clock=t2.clock,
                        executor="process", max_workers=2)
        for panel in (seq, par):
            assert [r.model for r in panel] == ["quick"]
            (failure,) = panel.failures
            assert failure.model == "slow"
            assert failure.error_type == "TimeBudgetExceeded"
            assert failure.fit_elapsed == pytest.approx(45.0)
        assert [_failure_key(f) for f in par.failures] == [
            _failure_key(f) for f in seq.failures
        ]


class TestCrashIsolation:
    def test_dead_worker_becomes_failure_record(self, movie_dataset):
        factories = {
            "pop": lambda: MostPopular(),
            "dies": lambda: Dies(),
            "bpr": lambda: BPRMF(epochs=4, seed=1),
        }
        panel = run_panel(movie_dataset, factories, max_users=10, seed=0,
                          executor="process", max_workers=2)
        assert [r.model for r in panel] == ["pop", "bpr"]
        (failure,) = panel.failures
        assert failure.model == "dies"
        assert failure.error_type == "WorkerCrashed"


class TestTelemetryMerge:
    def test_child_spans_merged_and_valid(self, movie_dataset):
        factories = {
            "pop": lambda: MostPopular(),
            "boom": lambda: Boom(),
            "bpr": lambda: BPRMF(epochs=4, seed=1),
        }
        tel = Telemetry()
        panel = run_panel(movie_dataset, factories, max_users=10, seed=0,
                          executor="process", max_workers=2, telemetry=tel)
        records = tel.tracer.records()
        assert validate_records(export_records(tel)) == []

        by_id = {r.span_id: r for r in records}
        (panel_span,) = [r for r in records if r.name == "panel"]
        assert panel_span.attrs["executor"] == "process"
        assert panel_span.attrs["workers"] == 2

        model_spans = [r for r in records if r.name == "panel/model"]
        assert {r.attrs["model"] for r in model_spans} == {"pop", "boom", "bpr"}
        # Child roots are re-parented under the parent panel span.
        assert all(r.parent_id == panel_span.span_id for r in model_spans)
        # Child clocks are re-based onto the parent timeline.
        assert all(
            panel_span.start <= r.start <= r.end for r in model_spans
        )

        # The failure joins to its remapped span.
        (failure,) = panel.failures
        assert failure.span_id in by_id
        joined = by_id[failure.span_id]
        assert joined.name == "panel/model"
        assert joined.attrs["model"] == "boom"
        assert joined.attrs["outcome"] == "failed"

        # Parent-side counters reconcile with the merged outcome.
        assert tel.counter("panel.models_ok").value == 2
        assert tel.counter("panel.models_failed").value == 1


class TestSequentialBudgetSemantics:
    def test_time_budget_judges_fit_not_backoff_sleep(self, movie_dataset):
        """Satellite fix: retry backoff no longer counts against the budget."""
        ticker = Ticker()
        policy = RetryPolicy(
            max_attempts=2, base_delay=100.0, jitter=0.0,
            sleep=ticker.advance, clock=ticker.clock,
        )
        Flaky.attempts = itertools.count()

        def flaky_slow():
            model = Flaky(fail_times=1)
            original_fit = model.fit

            def fit(dataset):
                ticker.advance(5.0)
                return original_fit(dataset)

            model.fit = fit
            return model

        panel = run_panel(
            movie_dataset, {"flaky": flaky_slow}, max_users=10, seed=0,
            retry=policy, time_budget=30.0, clock=ticker.clock,
        )
        # Attempt 1 fails after 5s of fit; the policy sleeps 100s; attempt 2
        # fits in 5s.  Budget (30s) judges the 5s fit, not the 110s total.
        assert panel.ok
        assert [r.model for r in panel] == ["flaky"]

    def test_failure_elapsed_includes_sleep_but_fit_elapsed_does_not(
        self, movie_dataset
    ):
        ticker = Ticker()
        policy = RetryPolicy(
            max_attempts=2, base_delay=100.0, max_delay=100.0, jitter=0.0,
            sleep=ticker.advance, clock=ticker.clock,
        )

        def boom_slow():
            model = Boom()
            original_fit = model.fit

            def fit(dataset):
                ticker.advance(5.0)
                return original_fit(dataset)

            model.fit = fit
            return model

        panel = run_panel(
            movie_dataset, {"boom": boom_slow}, max_users=10, seed=0,
            retry=policy, clock=ticker.clock,
        )
        (failure,) = panel.failures
        assert failure.attempts == 2
        # Total cost: 5s fit + 100s sleep + 5s fit.
        assert failure.elapsed == pytest.approx(110.0)
        # But the budgeted quantity is the last attempt's fit alone.
        assert failure.fit_elapsed == pytest.approx(5.0)


class TestValidation:
    def test_unknown_executor_rejected(self, movie_dataset):
        with pytest.raises(ConfigError, match="unknown executor"):
            run_panel(movie_dataset, {"pop": lambda: MostPopular()},
                      executor="threads")

    def test_process_requires_isolation(self, movie_dataset):
        with pytest.raises(ConfigError, match="isolate"):
            run_panel(movie_dataset, {"pop": lambda: MostPopular()},
                      executor="process", isolate=False)

    def test_empty_panel(self, movie_dataset):
        panel = run_panel(movie_dataset, {}, executor="process")
        assert list(panel) == [] and panel.ok

    def test_derive_entry_seed_decorrelates(self):
        seeds = [derive_entry_seed(0, i) for i in range(64)]
        assert len(set(seeds)) == 64
        assert seeds == [derive_entry_seed(0, i) for i in range(64)]
        assert derive_entry_seed(1, 0) != derive_entry_seed(0, 0)
