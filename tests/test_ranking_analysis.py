"""Tests for the sampled-ranking protocol and KG analysis utilities."""

import numpy as np
import pytest

from repro.core.exceptions import EvaluationError
from repro.core.recommender import Recommender
from repro.core.splitter import random_split
from repro.eval.ranking import sampled_ranking_evaluation
from repro.kg.analysis import (
    connected_components,
    degree_distribution,
    graph_summary,
    relation_histogram,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleStore
from repro.models.baselines import MostPopular, Random


class OracleModel(Recommender):
    def fit(self, dataset):
        self._scores = dataset.extra["user_latent"] @ dataset.extra["item_latent"].T
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id):
        return self._scores[user_id]


class TestSampledRanking:
    def test_oracle_beats_random(self, movie_split):
        train, test = movie_split
        oracle = sampled_ranking_evaluation(
            OracleModel().fit(train), train, test, num_negatives=30, seed=0
        )
        rnd = sampled_ranking_evaluation(
            Random(seed=0).fit(train), train, test, num_negatives=30, seed=0
        )
        assert oracle["HR@10"] > rnd["HR@10"]
        assert oracle["MRR"] > rnd["MRR"]

    def test_metric_keys(self, movie_split):
        train, test = movie_split
        result = sampled_ranking_evaluation(
            MostPopular().fit(train), train, test, k_values=(3, 7), seed=0
        )
        assert set(result) == {"HR@3", "HR@7", "NDCG@3", "NDCG@7", "MRR"}

    def test_random_hr_near_expectation(self, movie_split):
        """With C candidates, random HR@k ~= k / C."""
        train, test = movie_split
        result = sampled_ranking_evaluation(
            Random(seed=1).fit(train), train, test, num_negatives=19, seed=0
        )
        assert abs(result["HR@10"] - 0.5) < 0.15  # 10 of 20 candidates

    def test_requires_fitted(self, movie_split):
        train, test = movie_split
        with pytest.raises(EvaluationError):
            sampled_ranking_evaluation(Random(), train, test)

    def test_max_users(self, movie_split):
        train, test = movie_split
        result = sampled_ranking_evaluation(
            MostPopular().fit(train), train, test, max_users=5, seed=0
        )
        assert "MRR" in result


class TestAnalysis:
    def test_relation_histogram(self, tiny_kg):
        hist = relation_histogram(tiny_kg)
        assert hist == {"has_genre": 3, "acted_by": 2}

    def test_degree_distribution(self, tiny_kg):
        dist = degree_distribution(tiny_kg)
        assert dist["max"] >= dist["mean"] >= dist["min"]
        assert dist["isolated"] == 0

    def test_connected_components_single(self, tiny_kg):
        components = connected_components(tiny_kg)
        assert len(components) == 1
        assert components[0].size == 6

    def test_connected_components_split(self):
        store = TripleStore.from_triples([(0, 0, 1), (2, 0, 3)], 5, 1)
        kg = KnowledgeGraph(store)
        components = connected_components(kg)
        # {0,1}, {2,3}, {4}
        assert [c.size for c in components] == [2, 2, 1]

    def test_graph_summary(self, movie_dataset):
        summary = graph_summary(movie_dataset.kg)
        assert summary["entities"] == movie_dataset.kg.num_entities
        assert sum(summary["relation_histogram"].values()) == summary["triples"]
        assert summary["largest_component"] <= summary["entities"]
