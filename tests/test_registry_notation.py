"""Tests for the model registry (Table 3) and notation glossary (Table 2)."""

import pytest

from repro.core import notation
from repro.core.exceptions import ConfigError
from repro.core.registry import (
    SURVEY_TABLE3,
    TECHNIQUES,
    ModelCard,
    Usage,
    card_for,
    get_model_class,
    is_implemented,
    list_registered,
    register_model,
)
import repro.models  # noqa: F401 - populate registry


class TestSurveyTable3:
    def test_row_count(self):
        assert len(SURVEY_TABLE3) == 39

    def test_usage_distribution(self):
        counts = {u: 0 for u in Usage}
        for card in SURVEY_TABLE3:
            counts[card.usage] += 1
        assert counts[Usage.EMBEDDING] == 14
        assert counts[Usage.PATH] == 15
        assert counts[Usage.UNIFIED] == 10

    def test_unique_names(self):
        names = [c.name for c in SURVEY_TABLE3]
        assert len(set(names)) == len(names)

    def test_years_in_survey_range(self):
        for card in SURVEY_TABLE3:
            assert 2013 <= card.year <= 2019

    def test_technique_row_alignment(self):
        card = card_for("DKN")
        flags = dict(zip(TECHNIQUES, card.technique_row()))
        assert flags["CNN"] and flags["Att."]
        assert not flags["MF"]

    def test_known_rows(self):
        assert card_for("RippleNet").usage is Usage.UNIFIED
        assert card_for("FMG").venue == "KDD"
        assert card_for("CKE").techniques == frozenset({"AE"})

    def test_invalid_technique_rejected(self):
        with pytest.raises(ConfigError):
            ModelCard("X", "V", 2020, Usage.PATH, frozenset({"Quantum"}))


class TestRegistry:
    def test_majority_of_table3_implemented(self):
        implemented = [c.name for c in SURVEY_TABLE3 if is_implemented(c.name)]
        assert len(implemented) == 39

    def test_lookup_roundtrip(self):
        cls = get_model_class("RippleNet")
        assert cls.__name__ == "RippleNet"

    def test_unknown_model(self):
        with pytest.raises(ConfigError):
            get_model_class("NotARealModel")

    def test_unknown_card(self):
        with pytest.raises(ConfigError):
            card_for("NotARealModel")

    def test_list_by_usage(self):
        unified = list_registered(Usage.UNIFIED)
        assert "KGCN" in unified and "KGAT" in unified
        assert "CKE" not in unified

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_model("RippleNet")(type("Dup", (), {}))

    def test_non_table3_needs_card(self):
        with pytest.raises(ConfigError):
            register_model("BrandNewModel")(type("New", (), {}))

    def test_baselines_not_in_table3(self):
        assert card_for("BPR-MF").usage is Usage.BASELINE


class TestNotation:
    def test_row_count(self):
        assert len(notation.TABLE2) == 19

    def test_every_notation_resolves(self):
        for item in notation.TABLE2:
            obj = notation.resolve(item)
            assert obj is not None

    def test_interaction_matrix_notation(self):
        row = next(n for n in notation.TABLE2 if n.symbol == "R")
        assert "interaction" in row.description.lower()
        from repro.core.interactions import InteractionMatrix

        assert notation.resolve(row) is InteractionMatrix
