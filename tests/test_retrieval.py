"""Two-stage retrieval tests: index determinism, typed staleness
degradation through the serving ladder, and index-synced promotion.

The three contracts under test:

* **determinism** — same seed + same vectors ⇒ bitwise-identical index
  contents (fingerprints), candidate sets, and recall, for both kinds,
  across rebuilds and across a save/load round trip;
* **typed degradation** — a stale, missing, or fault-injected index never
  surfaces as an exception or an empty response: the candidate rung
  raises :class:`IndexStaleError`, the ladder answers through the exact
  rung, and the outcome is ``degraded``;
* **atomic promotion** — ``ModelRegistry.promote`` rebuilds the index
  against the candidate's embedding generation before the swap, so no
  live model ever pairs an index from one generation with embeddings
  from another.
"""

import numpy as np
import pytest

from repro.core.exceptions import (
    ConfigError,
    IndexStaleError,
    PromotionError,
    RetrievalError,
)
from repro.data import MOVIE_SCHEMA, generate_dataset
from repro.eval import Evaluator
from repro.kg.triples import TripleStore
from repro.kge.translational import TransE
from repro.retrieval import (
    ArrayEmbeddingRecommender,
    IvfIndex,
    LshIndex,
    TwoStageRecommender,
    exact_topk,
    load_index,
    recall_at_k,
)
from repro.runtime.faults import Fault, FaultInjector, FaultPlan
from repro.runtime.guards import validate_scores
from repro.serving import ManualClock, RecommenderService, ServeRequest
from repro.store import MmapShardStore, StoredEmbeddingRecommender

KINDS = {"ivf": IvfIndex, "lsh": LshIndex}


def clustered(num_rows, dim, seed, num_centers=16, spread=0.25):
    """Mixture-of-Gaussians vectors — the geometry learned embeddings have."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_centers, dim))
    rows = centers[rng.integers(num_centers, size=num_rows)]
    return (rows + spread * rng.standard_normal((num_rows, dim))).astype(np.float32)


@pytest.fixture(scope="module")
def catalog():
    items = clustered(600, 16, seed=1)
    queries = clustered(8, 16, seed=2)
    return items, queries


# ---------------------------------------------------------------------- #
# determinism + the AnnIndex contract
# ---------------------------------------------------------------------- #
class TestIndexDeterminism:
    @pytest.mark.parametrize("kind", KINDS)
    def test_same_seed_same_vectors_is_bitwise_identical(self, kind, catalog):
        items, queries = catalog
        first = KINDS[kind](seed=3).build(items, generation=5)
        second = KINDS[kind](seed=3).build(items, generation=5)
        assert first.fingerprint() == second.fingerprint()
        truth = [exact_topk(items, q, 10) for q in queries]
        recalls = []
        for q, true_ids in zip(queries, truth):
            a, b = first.search(q, 64), second.search(q, 64)
            assert np.array_equal(a, b)
            recalls.append(recall_at_k(a, true_ids))
        again = [
            recall_at_k(second.search(q, 64), t) for q, t in zip(queries, truth)
        ]
        assert recalls == again  # reported recall identical across builds

    @pytest.mark.parametrize("kind", KINDS)
    def test_different_seed_differs(self, kind, catalog):
        items, __ = catalog
        assert (
            KINDS[kind](seed=0).build(items).fingerprint()
            != KINDS[kind](seed=1).build(items).fingerprint()
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_search_contract(self, kind, catalog):
        """Sorted unique ids, at least k of them whenever possible."""
        items, queries = catalog
        index = KINDS[kind](seed=0).build(items)
        for q in queries:
            ids = index.search(q, 50)
            assert ids.size >= 50
            assert np.array_equal(ids, np.unique(ids))
        assert index.search(queries[0], items.shape[0]).size == items.shape[0]

    @pytest.mark.parametrize("kind", KINDS)
    def test_save_load_round_trip(self, kind, catalog, tmp_path):
        items, queries = catalog
        index = KINDS[kind](seed=4).build(items, generation=9)
        path = index.save(tmp_path / f"{kind}.npz")
        loaded = load_index(path)
        assert type(loaded) is KINDS[kind]
        assert loaded.generation == 9
        assert loaded.fingerprint() == index.fingerprint()
        for q in queries:
            assert np.array_equal(loaded.search(q, 32), index.search(q, 32))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an index")
        with pytest.raises(RetrievalError):
            load_index(path)
        with pytest.raises(RetrievalError):
            load_index(tmp_path / "missing.npz")

    def test_unbuilt_and_invalid_inputs_raise_typed(self):
        index = IvfIndex()
        with pytest.raises(RetrievalError):
            index.search(np.zeros(4, dtype=np.float32), 5)
        with pytest.raises(RetrievalError):
            index.build(np.array([[np.nan, 0.0]], dtype=np.float32))
        with pytest.raises(RetrievalError):
            IvfIndex(metric="cosine")

    def test_generation_is_assigned_last(self, catalog):
        """A failed rebuild leaves the index stale, never half-fresh."""
        items, __ = catalog
        index = IvfIndex(seed=0).build(items, generation=1)
        with pytest.raises(RetrievalError):
            index.build(np.full((10, 16), np.nan, dtype=np.float32), generation=2)
        assert index.generation == 1


# ---------------------------------------------------------------------- #
# the two-stage wrapper
# ---------------------------------------------------------------------- #
@pytest.fixture()
def two_stage():
    dataset = generate_dataset(MOVIE_SCHEMA, num_users=12, num_items=300, seed=0)
    base = ArrayEmbeddingRecommender(
        clustered(dataset.num_users, 16, seed=7),
        clustered(dataset.num_items, 16, seed=8),
        generation=1,
    )
    model = TwoStageRecommender(base, IvfIndex(seed=0), k_candidates=64)
    model.fit(dataset)
    model.sync_index()
    return dataset, base, model


class TestTwoStage:
    def test_protocol_is_checked_at_init(self, two_stage):
        from repro.models.baselines import MostPopular

        with pytest.raises(ConfigError, match="retrieval protocol"):
            TwoStageRecommender(MostPopular(), IvfIndex())

    def test_candidate_scores_are_exact(self, two_stage):
        dataset, base, model = two_stage
        for user in range(4):
            ids, scores = model.score_candidates(user)
            assert ids.size >= model.k_candidates
            np.testing.assert_array_equal(scores, base.score_all(user)[ids])

    def test_score_all_ranks_candidates_like_the_base(self, two_stage):
        """Among served items the order is exactly the base model's."""
        dataset, base, model = two_stage
        ids, __ = model.score_candidates(2)
        full = model.score_all(2)
        exact = base.score_all(2)
        np.testing.assert_array_equal(full[ids], exact[ids])
        assert full[np.setdiff1d(np.arange(dataset.num_items), ids)].max() < full[
            ids
        ].min()

    def test_stale_generation_refuses_typed(self, two_stage):
        dataset, base, model = two_stage
        base.set_embeddings(item_vectors=base.item_vectors() * 1.01)
        with pytest.raises(IndexStaleError, match="generation"):
            model.score_candidates(0)
        # score_all degrades to the exact path instead of raising...
        np.testing.assert_array_equal(model.score_all(0), base.score_all(0))
        # ...unless the owner opted out of the fallback.
        strict = TwoStageRecommender(
            base, model.index, k_candidates=64, exact_fallback=False
        ).fit(dataset)
        with pytest.raises(IndexStaleError):
            strict.score_all(0)

    def test_unbuilt_index_refuses_typed(self, two_stage):
        dataset, base, __ = two_stage
        model = TwoStageRecommender(base, IvfIndex(seed=0)).fit(dataset)
        with pytest.raises(IndexStaleError, match="never been built"):
            model.score_candidates(0)

    def test_sync_index_is_idempotent_when_fresh(self, two_stage):
        dataset, base, model = two_stage
        before = model.index.fingerprint()
        assert model.sync_index() == base.generation
        assert model.index.fingerprint() == before


# ---------------------------------------------------------------------- #
# serving-ladder degradation + promotion atomicity
# ---------------------------------------------------------------------- #
def build_service(dataset, base, model, faults=None):
    return RecommenderService(
        dataset,
        primary=("ann", model),
        fallbacks=[("exact", base)],
        faults=faults,
        clock=ManualClock(),
    )


class TestServingDegradation:
    def test_injected_index_stale_degrades_never_raises(self, two_stage):
        """Fault-injected staleness: typed ``degraded`` outcome, never an
        exception, never an empty response."""
        dataset, base, model = two_stage
        stale_steps = (1, 3, 4)
        plan = FaultPlan([Fault(step=s, kind="index_stale") for s in stale_steps])
        service = build_service(dataset, base, model, FaultInjector(plan))
        for step in range(8):
            response = service.serve(ServeRequest(user_id=step % 4, k=5))
            assert response.ok
            assert len(response.items) > 0
            if step in stale_steps:
                assert response.status == "degraded"
                assert response.model == "exact"
            else:
                assert response.status == "ok"
                assert response.model == "ann"
        assert service.metrics.snapshot()["rung_errors::ann"] == len(stale_steps)

    def test_real_staleness_then_promote_heals(self, two_stage):
        dataset, base, model = two_stage
        service = build_service(dataset, base, model)
        assert service.serve(ServeRequest(user_id=0, k=5)).status == "ok"

        base.set_embeddings(item_vectors=base.item_vectors() * 1.01)
        stale = service.serve(ServeRequest(user_id=0, k=5))
        assert stale.status == "degraded" and stale.model == "exact"

        record = service.promote("ann", model)
        assert record.generation == base.generation == model.index.generation
        healed = service.serve(ServeRequest(user_id=0, k=5))
        assert healed.status == "ok" and healed.model == "ann"

    def test_candidate_rung_excludes_seen_items(self, two_stage):
        dataset, base, model = two_stage
        seen = dataset.interactions.items_of(1)
        response = build_service(dataset, base, model).serve(
            ServeRequest(user_id=1, k=10)
        )
        assert response.status == "ok"
        assert not set(response.items) & set(seen.tolist())

    def test_promotion_probes_the_candidate_path(self, two_stage):
        """A candidate whose index cannot be rebuilt is rejected with the
        previous live model untouched."""
        dataset, base, model = two_stage
        service = build_service(dataset, base, model)

        broken = TwoStageRecommender(base, IvfIndex(seed=0), k_candidates=64)
        broken.fit(dataset)
        broken.sync_index = lambda force=False: (_ for _ in ()).throw(
            RetrievalError("disk full")
        )
        with pytest.raises(PromotionError, match="index sync failed"):
            service.promote("ann-broken", broken)
        record = service.registry.history[-1]
        assert not record.promoted and "disk full" in record.reason
        assert service.registry.live_name == "ann"
        assert service.serve(ServeRequest(user_id=0, k=5)).status == "ok"


# ---------------------------------------------------------------------- #
# store-backed: ANN over MmapShardStore serve-mode views
# ---------------------------------------------------------------------- #
def train_store(workdir, num_users, num_items, generations=2, seed=0):
    num_entities = num_users + num_items
    rng = np.random.default_rng(seed)
    triples = TripleStore(
        rng.integers(num_users, size=40),
        np.zeros(40, dtype=np.int64),
        rng.integers(num_users, num_entities, size=40),
        num_entities=num_entities,
        num_relations=1,
    )
    store = MmapShardStore.create(workdir, rows_per_shard=8, seed=seed)
    model = TransE(num_entities, 1, dim=4, seed=seed, store=store)
    for __ in range(generations):
        model.fit(triples, epochs=1, batch_size=8, seed=seed)
        store.commit()
    store.close()


@pytest.fixture()
def stored_two_stage(tmp_path):
    dataset = generate_dataset(MOVIE_SCHEMA, num_users=8, num_items=20, seed=0)
    train_store(tmp_path / "store", dataset.num_users, dataset.num_items)
    store = MmapShardStore.open(tmp_path / "store", mode="serve")
    base = StoredEmbeddingRecommender(
        store,
        user_entities=np.arange(dataset.num_users),
        item_entities=np.arange(
            dataset.num_users, dataset.num_users + dataset.num_items
        ),
    ).fit(dataset)
    model = TwoStageRecommender(base, LshIndex(seed=0), k_candidates=8)
    model.fit(dataset)
    yield dataset, store, base, model
    store.close()


class TestStoreBackedRetrieval:
    def test_candidates_score_off_the_store(self, stored_two_stage):
        dataset, store, base, model = stored_two_stage
        model.sync_index()
        assert model.index.generation == store.generation
        ids, scores = model.score_candidates(3)
        np.testing.assert_allclose(scores, base.score_all(3)[ids])

    def test_generation_remap_staleness_and_promote(self, stored_two_stage):
        """Promotion swaps index and store generation as one unit."""
        dataset, store, base, model = stored_two_stage
        service = build_service(dataset, base, model)
        newest = store.generation
        assert model.index.generation == newest  # promote() built it

        base.refresh(newest - 1)  # roll the store back; index now stale
        assert "generation" in model.index_report()
        degraded = service.serve(ServeRequest(user_id=0, k=5))
        assert degraded.status == "degraded" and degraded.model == "exact"

        record = service.promote("ann", model)
        assert record.generation == newest - 1
        assert model.index.generation == store.generation == newest - 1
        assert service.serve(ServeRequest(user_id=0, k=5)).status == "ok"


# ---------------------------------------------------------------------- #
# satellite: validate_scores candidate-subset mode
# ---------------------------------------------------------------------- #
class TestValidateScoresSubset:
    def test_ok_subset(self):
        report = validate_scores(
            np.array([1.0, 2.0, 3.0]), 100, expected_indices=np.array([5, 7, 99])
        )
        assert report.ok and report.num_scored == 3
        assert "candidate scores" in report.describe()

    def test_full_mode_unchanged(self):
        report = validate_scores(np.zeros(4), 4)
        assert report.ok and report.num_scored is None

    @pytest.mark.parametrize(
        "scores, indices, why",
        [
            (np.zeros(2), np.array([1, 2, 3]), "length mismatch"),
            (np.zeros(3), np.array([1, 2, 2]), "duplicate indices"),
            (np.zeros(3), np.array([1, 2, 100]), "index out of range"),
            (np.zeros(3), np.array([-1, 2, 3]), "negative index"),
            (np.zeros(3), np.array([0.5, 2.0, 3.0]), "float indices"),
            (np.zeros(0), np.zeros(0, dtype=np.int64), "empty candidate set"),
            (np.array([1.0, np.nan, 3.0]), np.array([1, 2, 3]), "NaN scores"),
        ],
    )
    def test_rejects(self, scores, indices, why):
        assert not validate_scores(scores, 100, expected_indices=indices).ok, why


# ---------------------------------------------------------------------- #
# satellite: evaluator assume_fresh
# ---------------------------------------------------------------------- #
class TestEvaluatorAssumeFresh:
    def test_metrics_identical_with_and_without_copy(self):
        train = generate_dataset(MOVIE_SCHEMA, num_users=16, num_items=40, seed=0)
        test = generate_dataset(
            MOVIE_SCHEMA, num_users=16, num_items=40, seed=1
        )
        base = ArrayEmbeddingRecommender(
            clustered(16, 8, seed=3), clustered(40, 8, seed=4)
        ).fit(train)
        results = {}
        for flag in (False, True):
            ev = Evaluator(train, test, seed=0, assume_fresh=flag)
            results[flag] = ev.evaluate(base)
        assert results[False].values == results[True].values
        per_user = {
            flag: Evaluator(train, test, seed=0, assume_fresh=flag).per_user_metric(
                base, "NDCG@10"
            )
            for flag in (False, True)
        }
        np.testing.assert_array_equal(per_user[False], per_user[True])
