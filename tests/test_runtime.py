"""Tests for the resilient training runtime (guards, retry, checkpoint, faults)."""

import numpy as np
import pytest

from repro.autograd import Adam, SGD
from repro.autograd.nn import Parameter
from repro.core.exceptions import (
    CheckpointError,
    ConfigError,
    TrainingDivergedError,
)
from repro.kg.triples import TripleStore
from repro.kge import TransE
from repro.runtime import (
    Checkpointer,
    DivergenceDetector,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    TrainingRuntime,
    clip_grad_norm,
    grad_norm,
    has_nonfinite_grad,
    load_checkpoint,
    save_checkpoint,
    zero_nonfinite_grads,
)


def _params(*arrays):
    out = []
    for a in arrays:
        p = Parameter(np.asarray(a, dtype=np.float64))
        p.grad = np.zeros_like(p.data)
        out.append(p)
    return out


@pytest.fixture(scope="module")
def small_store():
    """A tiny deterministic KG for fast TransE runs."""
    rng = np.random.default_rng(3)
    triples = [(int(rng.integers(12)), int(rng.integers(2)), int(rng.integers(12)))
               for __ in range(30)]
    return TripleStore.from_triples(triples, 12, 2)


# ---------------------------------------------------------------------- #
# guards
# ---------------------------------------------------------------------- #
class TestGuards:
    def test_grad_norm_and_clip(self):
        (p,) = _params([3.0, 4.0])
        p.grad[:] = [3.0, 4.0]
        assert grad_norm([p]) == pytest.approx(5.0)
        pre = clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(5.0)
        assert grad_norm([p]) == pytest.approx(1.0, rel=1e-6)

    def test_clip_noop_below_threshold(self):
        (p,) = _params([1.0, 0.0])
        p.grad[:] = [0.3, 0.4]
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_nonfinite_detection_and_repair(self):
        a, b = _params([1.0, 2.0], [3.0])
        a.grad[:] = [np.nan, 1.0]
        assert has_nonfinite_grad([a, b])
        repaired = zero_nonfinite_grads([a, b])
        assert repaired == 1
        assert not has_nonfinite_grad([a, b])
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_divergence_detector_nonfinite_patience(self):
        det = DivergenceDetector(patience=3)
        det.update(1.0)
        det.update(float("nan"))
        det.update(float("inf"))
        with pytest.raises(TrainingDivergedError):
            det.update(float("nan"))

    def test_divergence_detector_growth(self):
        det = DivergenceDetector(patience=2, growth_factor=10.0)
        det.update(1.0)
        det.update(50.0)  # bad, streak 1
        with pytest.raises(TrainingDivergedError):
            det.update(60.0)  # bad, streak 2

    def test_divergence_streak_resets_on_good_update(self):
        det = DivergenceDetector(patience=2, growth_factor=10.0)
        det.update(1.0)
        det.update(50.0)
        det.update(0.9)  # recovers
        det.update(50.0)  # streak restarts at 1, no raise
        assert det.bad_streak == 1

    def test_detector_validates_config(self):
        with pytest.raises(ConfigError):
            DivergenceDetector(patience=0)
        with pytest.raises(ConfigError):
            DivergenceDetector(growth_factor=1.0)


# ---------------------------------------------------------------------- #
# guarded optimizers
# ---------------------------------------------------------------------- #
class TestOptimizerGuards:
    def test_skip_policy_drops_the_update(self):
        (p,) = _params([1.0, 2.0])
        opt = Adam([p], lr=0.1, skip_nonfinite="skip")
        p.grad[:] = [np.nan, 1.0]
        assert opt.step() is False
        np.testing.assert_allclose(p.data, [1.0, 2.0])
        assert opt.nonfinite_steps == 1
        assert opt._t == 0  # skipped steps must not advance bias correction

    def test_zero_policy_repairs_and_applies(self):
        (p,) = _params([1.0, 2.0])
        opt = SGD([p], lr=0.5, skip_nonfinite="zero")
        p.grad[:] = [np.inf, 1.0]
        assert opt.step() is True
        np.testing.assert_allclose(p.data, [1.0, 1.5])  # only finite coord moved

    def test_raise_policy(self):
        (p,) = _params([1.0])
        opt = SGD([p], lr=0.1, skip_nonfinite="raise")
        p.grad[:] = [np.nan]
        with pytest.raises(TrainingDivergedError):
            opt.step()

    def test_off_policy_preserves_legacy_behavior(self):
        (p,) = _params([1.0])
        opt = SGD([p], lr=0.1)
        p.grad[:] = [np.nan]
        opt.step()
        assert np.isnan(p.data).all()

    def test_max_grad_norm_clips(self):
        (p,) = _params([0.0, 0.0])
        opt = SGD([p], lr=1.0, max_grad_norm=1.0)
        p.grad[:] = [30.0, 40.0]
        opt.step()
        assert np.linalg.norm(p.data) == pytest.approx(1.0, rel=1e-6)

    def test_invalid_policy_rejected(self):
        (p,) = _params([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, skip_nonfinite="maybe")


# ---------------------------------------------------------------------- #
# retry
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=1.0, jitter=0.5,
                             seed=7, sleep=sleeps.append)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_backoff_is_seeded_and_deterministic(self):
        a = RetryPolicy(max_attempts=4, base_delay=0.5, seed=13, sleep=lambda s: None)
        b = RetryPolicy(max_attempts=4, base_delay=0.5, seed=13, sleep=lambda s: None)
        assert a.delays() == b.delays()
        assert a.delays() == a.delays()  # reusable, restarts the stream
        c = RetryPolicy(max_attempts=4, base_delay=0.5, seed=14)
        assert a.delays() != c.delays()

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0,
                             sleep=lambda s: None)
        with pytest.raises(ValueError, match="always"):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("always")))

    def test_non_retryable_propagates_immediately(self):
        calls = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0,
                             retry_on=OSError, sleep=lambda s: None)

        def wrong_kind():
            calls.append(1)
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            policy.call(wrong_kind)
        assert len(calls) == 1

    def test_decorator_form(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0,
                             sleep=lambda s: None)
        state = {"n": 0}

        @policy
        def sometimes():
            state["n"] += 1
            if state["n"] == 1:
                raise RuntimeError("first time fails")
            return state["n"]

        assert sometimes() == 2

    def test_attempt_loop_form(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0,
                             sleep=lambda s: None)
        tries = []
        for attempt in policy:
            with attempt:
                tries.append(attempt.number)
                if attempt.number < 2:
                    raise OSError("flaky")
        assert tries == [1, 2]

    def test_per_attempt_deadline_stops_retrying(self):
        # Fake clock: each attempt appears to take 100s against a 10s deadline.
        ticks = iter(range(0, 10_000, 100))
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.0, jitter=0.0, deadline=10.0,
            sleep=lambda s: None, clock=lambda: float(next(ticks)),
        )
        calls = []

        def slow_and_broken():
            calls.append(1)
            raise OSError("too slow anyway")

        with pytest.raises(OSError):
            policy.call(slow_and_broken)
        assert len(calls) == 1  # not worth retrying an over-deadline attempt

    def test_total_budget_stops_before_overrunning_slo(self):
        # Manual clock: each attempt takes 1s, backoff is a flat 10s.  With
        # a 15s total budget the first backoff fits (1 + 10 = 11s) but the
        # second would not (12 + 10 = 22s), so exactly two attempts run.
        now = [0.0]

        def clock():
            return now[0]

        def sleep(seconds):
            now[0] += seconds

        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, multiplier=1.0, jitter=0.0,
            total_budget=15.0, sleep=sleep, clock=clock,
        )
        calls = []

        def slow_and_broken():
            calls.append(1)
            now[0] += 1.0
            raise OSError("still broken")

        with pytest.raises(OSError):
            policy.call(slow_and_broken)
        assert len(calls) == 2
        assert now[0] <= 15.0  # the SLO was never exceeded

    def test_total_budget_unlimited_by_default(self):
        now = [0.0]
        policy = RetryPolicy(
            max_attempts=4, base_delay=10.0, multiplier=1.0, jitter=0.0,
            sleep=lambda s: now.__setitem__(0, now[0] + s),
            clock=lambda: now[0],
        )
        calls = []

        def broken():
            calls.append(1)
            raise OSError("nope")

        with pytest.raises(OSError):
            policy.call(broken)
        assert len(calls) == 4  # every attempt ran, however long the backoff

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ConfigError):
            RetryPolicy(total_budget=0.0)

    def test_budget_with_zero_base_delay_rejected(self):
        # base_delay=0 means backoff sleeps can never consume the budget:
        # the loop would retry max_attempts times with the budget check
        # inert.  Construction must reject the combination up front.
        with pytest.raises(ConfigError, match="base_delay"):
            RetryPolicy(total_budget=5.0, base_delay=0.0)
        # Without a budget, zero backoff stays legal (pure attempt cap).
        RetryPolicy(base_delay=0.0)
        # With max_attempts=1 there is no backoff to consume it either.
        RetryPolicy(total_budget=5.0, base_delay=0.0, max_attempts=1)

    def test_budget_with_non_advancing_clock_raises_config_error(self):
        # A mis-wired ManualClock (sleep does not advance the clock the
        # policy reads) would make the budget check read zero elapsed
        # time forever — surfaced as ConfigError, not an infinite spin.
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, jitter=0.0, total_budget=100.0,
            sleep=lambda s: None, clock=lambda: 0.0,
        )

        def broken():
            raise OSError("still down")

        with pytest.raises(ConfigError, match="clock did not advance"):
            policy.call(broken)

    def test_budget_with_wired_manual_clock_trips_normally(self):
        # Correctly wired (sleep advances the same clock), the budget
        # gives up with the last real error — never ConfigError.
        from repro.core.clock import ManualClock

        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=50, base_delay=1.0, multiplier=1.0, jitter=0.0,
            total_budget=3.5, sleep=clock.advance, clock=clock,
        )
        calls = []

        def broken():
            calls.append(1)
            raise OSError("still down")

        with pytest.raises(OSError):
            policy.call(broken)
        assert 1 < len(calls) < 50  # budget, not the attempt cap, stopped it
        assert clock() <= 3.5


# ---------------------------------------------------------------------- #
# checkpointing
# ---------------------------------------------------------------------- #
class TestCheckpoint:
    def test_roundtrip_params_optimizer_rng(self, tmp_path):
        params = _params([1.0, 2.0], [[3.0], [4.0]])
        opt = Adam(params, lr=0.1)
        params[0].grad[:] = [0.1, 0.2]
        params[1].grad[:] = [[0.3], [0.4]]
        opt.step()
        rng = np.random.default_rng(5)
        rng.random(7)  # advance the stream

        path = save_checkpoint(tmp_path / "c.npz", params, optimizer=opt,
                               step=4, rng=rng, extra={"history": [1.0, 0.5]})
        ck = load_checkpoint(path)
        assert ck.step == 4
        assert ck.extra["history"] == [1.0, 0.5]

        fresh = _params([0.0, 0.0], [[0.0], [0.0]])
        fresh_opt = Adam(fresh, lr=0.1)
        fresh_rng = np.random.default_rng(0)
        ck.restore(fresh, optimizer=fresh_opt, rng=fresh_rng)
        np.testing.assert_array_equal(fresh[0].data, params[0].data)
        np.testing.assert_array_equal(fresh_opt._m[1], opt._m[1])
        assert fresh_opt._t == opt._t
        assert fresh_rng.random() == rng.random()

    def test_shape_mismatch_raises(self, tmp_path):
        params = _params([1.0, 2.0])
        path = save_checkpoint(tmp_path / "c.npz", params)
        with pytest.raises(CheckpointError, match="shape"):
            load_checkpoint(path).restore(_params([0.0, 0.0, 0.0]))

    def test_corrupt_archive_raises_checkpoint_error(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(bad)

    def test_checkpointer_interval_and_prune(self, tmp_path):
        params = _params([1.0])
        ck = Checkpointer(tmp_path, every=2, keep=2)
        saved = [ck.maybe_save(step, params) for step in range(8)]
        # 0-based steps: saves fire at steps 1, 3, 5, 7
        assert [s is not None for s in saved] == [False, True] * 4
        assert len(ck.paths()) == 2  # pruned to the newest two
        assert ck.latest_path().name.endswith("00000007.npz")
        assert ck.load_latest().step == 7

    def test_restore_latest_empty_directory(self, tmp_path):
        ck = Checkpointer(tmp_path)
        assert ck.restore_latest(_params([1.0])) is None

    def test_resume_skips_truncated_latest(self, tmp_path):
        params = _params([1.0])
        ck = Checkpointer(tmp_path, every=1, keep=3)
        for step in range(3):
            params[0].data[:] = float(step)
            ck.maybe_save(step, params)
        # truncate the newest file, as if the process died mid-write
        newest = ck.latest_path()
        with open(newest, "r+b") as handle:
            handle.truncate(40)
        restored = ck.load_latest()
        assert restored.step == 1  # fell back to the newest *loadable* one
        target = _params([0.0])
        ck.restore_latest(target)
        np.testing.assert_array_equal(target[0].data, [1.0])

    def test_resume_raises_when_every_checkpoint_is_corrupt(self, tmp_path):
        params = _params([1.0])
        ck = Checkpointer(tmp_path, every=1, keep=3)
        for step in range(2):
            ck.maybe_save(step, params)
        for path in ck.paths():
            path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            ck.load_latest()


# ---------------------------------------------------------------------- #
# fault injection
# ---------------------------------------------------------------------- #
class TestFaults:
    def test_plan_is_deterministic(self):
        a = FaultPlan.random(num_steps=100, rate=0.2, seed=9)
        b = FaultPlan.random(num_steps=100, rate=0.2, seed=9)
        assert [(f.step, f.kind) for f in a] == [(f.step, f.kind) for f in b]
        assert len(a) > 0

    def test_nan_grad_fault(self):
        (p,) = _params([1.0, 2.0])
        p.grad[:] = [0.5, 0.5]
        injector = FaultInjector(FaultPlan([Fault(step=3, kind="nan_grad")]))
        injector.before_step(2, [p])
        assert not has_nonfinite_grad([p])
        injector.before_step(3, [p])
        assert np.isnan(p.grad).all()
        assert len(injector.injected) == 1

    def test_raise_fault(self):
        injector = FaultInjector(FaultPlan([Fault(step=0, kind="raise")]))
        with pytest.raises(InjectedFault):
            injector.before_step(0)

    def test_stall_fault_uses_injected_sleep(self):
        stalls = []
        injector = FaultInjector(
            FaultPlan([Fault(step=1, kind="stall", seconds=42.0)]),
            sleep=stalls.append,
        )
        injector.before_step(1)
        assert stalls == [42.0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Fault(step=0, kind="explode")


# ---------------------------------------------------------------------- #
# end-to-end: the runtime threaded through a KGE fit loop
# ---------------------------------------------------------------------- #
class TestKGERuntimeIntegration:
    def test_nan_faults_survived_with_skip_policy(self, small_store):
        plan = FaultPlan([Fault(step=2, kind="nan_grad"),
                          Fault(step=5, kind="nan_grad")])
        injector = FaultInjector(plan)
        model = TransE(12, 2, dim=6, seed=0)
        history = model.fit(
            small_store, epochs=8, seed=0,
            runtime=TrainingRuntime(faults=injector),
            skip_nonfinite="skip",
        )
        assert len(injector.injected) == 2
        assert np.isfinite(model.entity.weight.data).all()
        assert all(np.isfinite(history))

    def test_divergence_detector_raises_on_injected_nans(self, small_store):
        # Without a skip policy the NaN gradients poison the parameters and
        # therefore the loss; the detector must pull the plug.
        plan = FaultPlan([Fault(step=s, kind="nan_grad") for s in range(2, 8)])
        runtime = TrainingRuntime(
            divergence=DivergenceDetector(patience=2),
            faults=FaultInjector(plan),
        )
        model = TransE(12, 2, dim=6, seed=0)
        with pytest.raises(TrainingDivergedError):
            model.fit(small_store, epochs=8, seed=0, runtime=runtime)

    def test_checkpoint_crash_resume_is_bitwise_identical(self, small_store, tmp_path):
        epochs = 6
        reference = TransE(12, 2, dim=6, seed=0)
        ref_history = reference.fit(small_store, epochs=epochs, seed=0)

        # Interrupted run: checkpoints every epoch, killed mid-epoch 4
        # (batch_size >= num_triples, so global step == epoch).
        crashed = TransE(12, 2, dim=6, seed=0)
        runtime = TrainingRuntime(
            checkpointer=Checkpointer(tmp_path, every=1, keep=2),
            faults=FaultInjector(FaultPlan([Fault(step=4, kind="raise")])),
        )
        with pytest.raises(InjectedFault):
            crashed.fit(small_store, epochs=epochs, seed=0, runtime=runtime)

        # Resume in a fresh process-equivalent: new model object, no faults.
        resumed = TransE(12, 2, dim=6, seed=0)
        history = resumed.fit(
            small_store, epochs=epochs, seed=0,
            runtime=TrainingRuntime(
                checkpointer=Checkpointer(tmp_path, every=1, keep=2)
            ),
        )
        np.testing.assert_array_equal(
            resumed.entity.weight.data, reference.entity.weight.data
        )
        np.testing.assert_array_equal(
            resumed.relation.weight.data, reference.relation.weight.data
        )
        np.testing.assert_allclose(history, ref_history)
        assert resumed.is_fitted

    def test_resume_skips_completed_training(self, small_store, tmp_path):
        ck = Checkpointer(tmp_path, every=1)
        first = TransE(12, 2, dim=6, seed=0)
        first.fit(small_store, epochs=3, seed=0,
                  runtime=TrainingRuntime(checkpointer=ck))
        again = TransE(12, 2, dim=6, seed=0)
        history = again.fit(small_store, epochs=3, seed=0,
                            runtime=TrainingRuntime(checkpointer=ck))
        assert len(history) == 3
        np.testing.assert_array_equal(
            again.entity.weight.data, first.entity.weight.data
        )
