"""Parametrized structural checks: each scenario's graph matches its schema."""

import numpy as np
import pytest

from repro.data import SCENARIO_SCHEMAS
from repro.data.synthetic import generate_dataset
from repro.kg.hin import NetworkSchema


@pytest.fixture(scope="module", params=sorted(SCENARIO_SCHEMAS))
def world(request):
    name = request.param
    schema = SCENARIO_SCHEMAS[name]
    data = generate_dataset(schema, num_users=12, num_items=24, seed=3)
    return schema, data


class TestSchemaConformance:
    def test_type_names_match_schema(self, world):
        schema, data = world
        expected = [schema.item_type] + [a.name for a in schema.attributes]
        assert data.kg.type_names == expected

    def test_relation_labels_cover_schema(self, world):
        schema, data = world
        for spec in schema.attributes:
            assert spec.relation in data.kg.relation_labels
        for __, rel, __dst, __n in schema.attribute_links:
            assert rel in data.kg.relation_labels

    def test_entity_counts_match_specs(self, world):
        schema, data = world
        kg = data.kg
        for type_id, spec in enumerate(schema.attributes, start=1):
            assert kg.entities_of_type(type_id).size == spec.count

    def test_links_per_item_within_bounds(self, world):
        schema, data = world
        kg = data.kg
        for item in range(data.num_items):
            idx = kg.store.outgoing(item)
            rels = kg.store.relations[idx]
            for spec in schema.attributes:
                rel_id = kg.relation_id(spec.relation)
                count = int((rels == rel_id).sum())
                lo, hi = spec.per_item
                assert lo <= count <= hi, (schema.scenario, spec.name)

    def test_item_facts_point_to_declared_type(self, world):
        schema, data = world
        kg = data.kg
        for spec in schema.attributes:
            rel_id = kg.relation_id(spec.relation)
            type_id = kg.type_names.index(spec.name)
            idx = kg.store.with_relation(rel_id)
            heads = kg.store.heads[idx]
            tails = kg.store.tails[idx]
            item_heads = heads < data.num_items
            assert (kg.entity_types[tails[item_heads]] == type_id).all()

    def test_network_schema_validates(self, world):
        __, data = world
        schema = NetworkSchema(data.kg)
        # Every schema-enumerated item-item meta-path must validate.
        for path in schema.enumerate_metapaths(0, 0, max_length=2, max_paths=10):
            schema.validate(path)

    def test_text_dim_respected(self, world):
        schema, data = world
        if schema.text_dim > 0:
            assert data.item_text is not None
            assert data.item_text.shape == (data.num_items, schema.text_dim)
        else:
            assert data.item_text is None
