"""Unit tests for the fault-tolerant serving layer (`repro.serving`)."""

import numpy as np
import pytest

from repro.core.exceptions import (
    ConfigError,
    DataError,
    DeadlineExceeded,
    ModelUnavailableError,
    Overloaded,
    PromotionError,
    RequestError,
)
from repro.core.recommender import Recommender
from repro.data import MOVIE_SCHEMA, generate_dataset
from repro.models.baselines import MostPopular
from repro.runtime.guards import validate_scores
from repro.serving import (
    AdmissionQueue,
    CircuitBreaker,
    Deadline,
    ManualClock,
    ModelRegistry,
    RecommenderService,
    ServeRequest,
    StaticTopK,
    validate_request,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(MOVIE_SCHEMA, num_users=20, num_items=15, seed=0)


class Linear(Recommender):
    """Deterministic personalized scores: score(u, i) = (i * (u + 3)) % 11."""

    def fit(self, dataset):
        self._n = dataset.num_items
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id):
        return ((np.arange(self._n) * (user_id + 3)) % 11).astype(np.float64)


class Breakable(Recommender):
    """Healthy until ``broken`` is flipped (passes canary, fails live)."""

    def __init__(self, mode="raise"):
        super().__init__()
        self.broken = False
        self.mode = mode

    def fit(self, dataset):
        self._n = dataset.num_items
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id):
        if self.broken:
            if self.mode == "raise":
                raise RuntimeError("model exploded")
            return np.full(self._n, np.nan)
        return np.arange(self._n, dtype=np.float64)


def make_service(dataset, clock=None, **kwargs):
    clock = clock or ManualClock()
    kwargs.setdefault("primary", ("linear", Linear().fit(dataset)))
    kwargs.setdefault("fallbacks", [("popular", MostPopular().fit(dataset))])
    return RecommenderService(dataset, clock=clock, **kwargs), clock


# ---------------------------------------------------------------------- #
# score validation guard
# ---------------------------------------------------------------------- #
class TestValidateScores:
    def test_ok(self):
        report = validate_scores(np.ones(5), 5)
        assert report.ok and report.describe().startswith("ok")

    def test_wrong_shape(self):
        assert not validate_scores(np.ones(4), 5).ok
        assert not validate_scores(np.ones((5, 1)), 5).ok

    def test_nonfinite_counts(self):
        report = validate_scores(np.array([1.0, np.nan, np.inf, -np.inf]), 4)
        assert not report.ok
        assert report.num_nan == 1
        assert report.num_inf == 2

    def test_non_numeric(self):
        assert not validate_scores(np.array(["a", "b"]), 2).ok


# ---------------------------------------------------------------------- #
# clock and deadline
# ---------------------------------------------------------------------- #
class TestManualClock:
    def test_advance(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(1.5)
        clock.sleep(0.5)  # alias
        assert clock() == pytest.approx(2.0)

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestDeadline:
    def test_expiry_and_check(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check()
        assert deadline.remaining() == pytest.approx(1.0)
        clock.advance(1.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="scoring"):
            deadline.check("scoring")

    def test_unbounded(self):
        clock = ManualClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired
        assert deadline.remaining() == np.inf
        deadline.check()

    def test_config(self):
        with pytest.raises(ConfigError):
            Deadline(0.0)


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_on_consecutive_failures(self):
        clock = ManualClock()
        b = CircuitBreaker(failure_threshold=3, recovery_time=10.0, clock=clock)
        for __ in range(2):
            assert b.allow()
            b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        assert b.rejections == 1
        assert [t.to_state for t in b.transitions] == ["open"]

    def test_opens_on_failure_rate(self):
        clock = ManualClock()
        b = CircuitBreaker(
            failure_threshold=100, failure_rate_threshold=0.5, window=4,
            clock=clock,
        )
        outcomes = [False, True, False, True]  # 50% failures once window full
        for fail in outcomes:
            b.record_failure() if fail else b.record_success()
        assert b.state == "open"
        assert "failure rate" in b.transitions[0].reason

    def test_half_open_probe_lifecycle(self):
        clock = ManualClock()
        b = CircuitBreaker(
            failure_threshold=1, recovery_time=5.0, half_open_probes=2,
            clock=clock,
        )
        b.record_failure()
        assert b.state == "open"
        clock.advance(5.0)
        assert b.state == "half_open"
        assert b.allow() and b.allow()
        assert not b.allow()  # probe budget exhausted
        b.record_success()
        assert b.state == "half_open"
        b.record_success()
        assert b.state == "closed"
        states = [t.to_state for t in b.transitions]
        assert states == ["open", "half_open", "closed"]

    def test_half_open_failure_reopens(self):
        clock = ManualClock()
        b = CircuitBreaker(failure_threshold=1, recovery_time=5.0, clock=clock)
        b.record_failure()
        clock.advance(5.0)
        assert b.state == "half_open"
        b.record_failure()
        assert b.state == "open"
        clock.advance(4.9)
        assert b.state == "open"  # cooldown restarted at reopen

    def test_config_validation(self):
        for kwargs in (
            {"failure_threshold": 0},
            {"failure_rate_threshold": 0.0},
            {"window": 0},
            {"recovery_time": 0.0},
            {"half_open_probes": 0},
        ):
            with pytest.raises(ConfigError):
                CircuitBreaker(**kwargs)


# ---------------------------------------------------------------------- #
# admission queue
# ---------------------------------------------------------------------- #
class TestAdmissionQueue:
    def test_sheds_at_capacity_and_drains(self):
        clock = ManualClock()
        q = AdmissionQueue(capacity=3, drain_rate=10.0, clock=clock)
        for __ in range(3):
            q.admit()
        with pytest.raises(Overloaded):
            q.admit()
        assert q.shed == 1 and q.admitted == 3
        clock.advance(0.1)  # drains one unit at 10/s
        q.admit()
        assert q.admitted == 4

    def test_wait_estimate(self):
        clock = ManualClock()
        q = AdmissionQueue(capacity=10, drain_rate=10.0, clock=clock)
        assert q.admit() == pytest.approx(0.0)
        assert q.admit() == pytest.approx(0.1)  # behind one queued unit

    def test_config(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ConfigError):
            AdmissionQueue(drain_rate=0.0)


# ---------------------------------------------------------------------- #
# static last resort
# ---------------------------------------------------------------------- #
class TestStaticTopK:
    def test_popularity_from_dataset(self, dataset):
        static = StaticTopK().fit(dataset)
        np.testing.assert_allclose(
            static.score_all(0),
            dataset.interactions.item_degrees().astype(np.float64),
        )
        # handed-out vector is a copy: mutation cannot corrupt the rung
        static.score_all(0)[:] = -1
        assert (static.score_all(0) >= 0).all()

    def test_rejects_bad_vectors(self, dataset):
        with pytest.raises(DataError):
            StaticTopK(np.array([1.0, np.nan]))
        with pytest.raises(DataError):
            StaticTopK(np.ones(3)).fit(dataset)  # wrong length


# ---------------------------------------------------------------------- #
# registry / hot swap
# ---------------------------------------------------------------------- #
class TestModelRegistry:
    def test_promote_and_rollback(self, dataset):
        clock = ManualClock()
        reg = ModelRegistry(dataset.num_items, clock=clock)
        with pytest.raises(ModelUnavailableError):
            reg.live
        reg.promote("a", Linear().fit(dataset), canary_users=range(4))
        assert reg.live_name == "a"
        reg.promote("b", MostPopular().fit(dataset), canary_users=range(4))
        assert reg.live_name == "b"
        assert reg.rollback() == "a"
        # Two promotions plus the rollback's own audit record.
        assert [r.kind for r in reg.history] == [
            "promote", "promote", "rollback",
        ]
        assert [r.promoted for r in reg.history] == [True, True, False]
        assert reg.history[-1].rejection == "rollback:operator"

    def test_rejects_nan_candidate(self, dataset):
        reg = ModelRegistry(dataset.num_items, clock=ManualClock())
        reg.promote("good", Linear().fit(dataset), canary_users=range(4))
        bad = Breakable(mode="nan").fit(dataset)
        bad.broken = True
        with pytest.raises(PromotionError, match="canary"):
            reg.promote("bad", bad, canary_users=range(4))
        assert reg.live_name == "good"  # atomic: swap never happened
        assert not reg.history[-1].promoted

    def test_rejects_raising_candidate(self, dataset):
        reg = ModelRegistry(dataset.num_items, clock=ManualClock())
        bad = Breakable(mode="raise").fit(dataset)
        bad.broken = True
        with pytest.raises(PromotionError, match="RuntimeError"):
            reg.promote("bad", bad, canary_users=range(2))

    def test_empty_canary_refused(self, dataset):
        reg = ModelRegistry(dataset.num_items, clock=ManualClock())
        with pytest.raises(PromotionError, match="empty"):
            reg.promote("m", Linear().fit(dataset), canary_users=())


# ---------------------------------------------------------------------- #
# request validation at the service boundary
# ---------------------------------------------------------------------- #
class TestRequestValidation:
    def test_empty_catalog(self):
        with pytest.raises(RequestError, match="empty"):
            validate_request(ServeRequest(user_id=0), num_users=5, num_items=0)

    @pytest.mark.parametrize(
        "request_kwargs, match",
        [
            ({"user_id": 99}, "unknown user"),
            ({"user_id": -1}, "unknown user"),
            ({"user_id": "zero"}, "integer"),
            ({"user_id": 1.5}, "integer"),
            ({"user_id": True}, "integer"),
            ({"user_id": 0, "k": 0}, "k must be"),
            ({"user_id": 0, "k": 2.5}, "integer"),
            ({"user_id": 0, "deadline": -1.0}, "deadline"),
        ],
    )
    def test_malformed_requests(self, request_kwargs, match):
        with pytest.raises(RequestError, match=match):
            validate_request(
                ServeRequest(**request_kwargs), num_users=10, num_items=10
            )

    def test_serve_returns_rejected_not_raise(self, dataset):
        service, __ = make_service(dataset)
        response = service.serve(ServeRequest(user_id=999))
        assert response.status == "rejected"
        assert "unknown user" in response.error
        assert service.metrics.counters["status::rejected"] == 1

    def test_recommend_facade_raises(self, dataset):
        service, __ = make_service(dataset)
        with pytest.raises(RequestError):
            service.recommend(user_id=999)


# ---------------------------------------------------------------------- #
# service behavior
# ---------------------------------------------------------------------- #
class TestRecommenderService:
    def test_ok_path_matches_model_ranking(self, dataset):
        service, __ = make_service(dataset)
        response = service.serve(ServeRequest(user_id=3, k=5))
        assert response.status == "ok"
        assert response.model == "linear"
        assert not response.degraded and response.fallback_used is None
        # reproduce the expected ranking by hand
        scores = Linear().fit(dataset).score_all(3)
        scores[dataset.interactions.items_of(3)] = -np.inf
        top = np.argpartition(-scores, 4)[:5]
        expected = top[np.argsort(-scores[top], kind="stable")]
        expected = expected[np.isfinite(scores[expected])]  # no seen-item padding
        assert list(response.items) == [int(i) for i in expected]
        assert all(np.isfinite(s) for s in response.scores)

    def test_k_clamped_to_catalog(self, dataset):
        service, __ = make_service(dataset)
        response = service.serve(
            ServeRequest(user_id=0, k=10_000, exclude_seen=False)
        )
        assert response.ok
        assert len(response.items) == dataset.num_items

    def test_broken_primary_degrades_to_fallback(self, dataset):
        primary = Breakable(mode="raise").fit(dataset)
        service, __ = make_service(dataset, primary=("breakable", primary))
        primary.broken = True
        response = service.serve(ServeRequest(user_id=1, k=3))
        assert response.status == "degraded"
        assert response.fallback_used == "popular"
        assert service.metrics.counters["fallback_activations"] == 1
        assert service.metrics.counters["rung_errors::breakable"] == 1

    def test_nan_primary_degrades(self, dataset):
        primary = Breakable(mode="nan").fit(dataset)
        service, __ = make_service(dataset, primary=("breakable", primary))
        primary.broken = True
        response = service.serve(ServeRequest(user_id=1, k=3))
        assert response.status == "degraded"
        assert service.metrics.counters["invalid_scores::breakable"] == 1

    def test_all_models_broken_static_answers(self, dataset):
        primary = Breakable(mode="raise").fit(dataset)
        fallback = Breakable(mode="nan").fit(dataset)
        service, __ = make_service(
            dataset,
            primary=("p", primary),
            fallbacks=[("f", fallback)],
        )
        primary.broken = fallback.broken = True
        response = service.serve(ServeRequest(user_id=0, k=4))
        assert response.status == "degraded"
        assert response.model == "static"
        seen = set(dataset.interactions.items_of(0).tolist())
        assert 1 <= len(response.items) <= 4
        assert not seen & set(response.items)

    def test_shedding(self, dataset):
        clock = ManualClock()
        service, __ = make_service(
            dataset,
            clock=clock,
            admission=AdmissionQueue(capacity=2, drain_rate=10.0, clock=clock),
        )
        statuses = [
            service.serve(ServeRequest(user_id=0)).status for __ in range(4)
        ]
        assert statuses == ["ok", "ok", "shed", "shed"]
        clock.advance(1.0)
        assert service.serve(ServeRequest(user_id=0)).status == "ok"
        with pytest.raises(Overloaded):
            for __ in range(5):
                service.recommend(user_id=0)

    def test_hot_swap_and_rollback(self, dataset):
        service, __ = make_service(dataset)
        assert service.serve(ServeRequest(user_id=0)).model == "linear"
        service.promote("popular-v2", MostPopular().fit(dataset))
        assert service.serve(ServeRequest(user_id=0)).model == "popular-v2"
        assert service.metrics.counters["promotions"] == 2  # init + swap

        bad = Breakable(mode="nan").fit(dataset)
        bad.broken = True
        with pytest.raises(PromotionError):
            service.promote("bad", bad)
        assert service.metrics.counters["promotion_failures"] == 1
        assert service.serve(ServeRequest(user_id=0)).model == "popular-v2"

        assert service.rollback() == "linear"
        assert service.serve(ServeRequest(user_id=0)).model == "linear"

    def test_health_and_ready(self, dataset):
        service, __ = make_service(dataset)
        assert service.ready()
        health = service.health()
        assert health["ready"] is True
        assert health["live_model"] == "linear"
        assert health["live_breaker_state"] == "closed"
        assert health["rungs"] == ["linear", "popular", "static"]
        assert "latency_p50" in health["metrics"]
        import json

        json.dumps(health)  # probe payload must be JSON-safe

    def test_deadline_exceeded_on_primary_degrades(self, dataset):
        clock = ManualClock()

        class Slow(Linear):
            def score_all(self, user_id):
                clock.advance(0.2)
                return super().score_all(user_id)

        service, __ = make_service(
            dataset,
            clock=clock,
            primary=("slow", Slow().fit(dataset)),
            default_deadline=0.05,
        )
        response = service.serve(ServeRequest(user_id=0))
        assert response.status == "degraded"
        assert service.metrics.counters["deadline_exceeded::slow"] == 1

    def test_reserved_static_name(self, dataset):
        with pytest.raises(ConfigError):
            make_service(
                dataset, fallbacks=[("static", MostPopular().fit(dataset))]
            )

    def test_initial_promotion_probes_canary(self, dataset):
        bad = Breakable(mode="nan").fit(dataset)
        bad.broken = True
        with pytest.raises(PromotionError):
            make_service(dataset, primary=("bad", bad))
