"""Chaos suite: seeded fault plans driven through `RecommenderService`.

The serving contract under chaos (ISSUE 4 acceptance invariant):

1. every request receives a typed outcome — ok / degraded / shed /
   rejected — and no exception escapes the service;
2. breaker state transitions match the fault plan, verified against an
   injected :class:`ManualClock` with zero real sleeps;
3. two runs with the same seed produce bitwise-identical response traces.
"""

import numpy as np
import pytest

from repro.core.recommender import Recommender
from repro.core.rng import ensure_rng
from repro.data import MOVIE_SCHEMA, generate_dataset
from repro.models.baselines import MostPopular
from repro.runtime.faults import (
    SERVING_FAULT_KINDS,
    Fault,
    FaultInjector,
    FaultPlan,
)
from repro.serving import (
    AdmissionQueue,
    ManualClock,
    RecommenderService,
    ServeRequest,
)

VALID_STATUSES = {"ok", "degraded", "shed", "rejected"}


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(MOVIE_SCHEMA, num_users=24, num_items=18, seed=7)


class Linear(Recommender):
    def fit(self, dataset):
        self._n = dataset.num_items
        self._mark_fitted(dataset)
        return self

    def score_all(self, user_id):
        return ((np.arange(self._n) * (user_id + 3)) % 11).astype(np.float64)


def make_chaos_service(dataset, plan, *, deadline=0.05, admission=True):
    """Service + clock + injector wired for one chaos run."""
    clock = ManualClock()
    injector = FaultInjector(plan, sleep=clock.advance)
    service = RecommenderService(
        dataset,
        primary=("primary", Linear().fit(dataset)),
        fallbacks=[("popular", MostPopular().fit(dataset))],
        default_deadline=deadline,
        breaker_config={
            "failure_threshold": 3,
            "window": 8,
            "recovery_time": 1.0,
            "half_open_probes": 2,
        },
        admission=AdmissionQueue(capacity=4, drain_rate=100.0, clock=clock)
        if admission
        else None,
        faults=injector,
        clock=clock,
    )
    return service, clock, injector


def replay(service, clock, seed, num_requests):
    """Seeded request stream; returns (traces, responses)."""
    rng = ensure_rng(seed)
    responses = []
    for __ in range(num_requests):
        user = int(rng.integers(service.dataset.num_users))
        responses.append(service.serve(ServeRequest(user_id=user, k=5)))
        clock.advance(0.004 if rng.random() < 0.7 else 0.02)
    return [r.trace() for r in responses], responses


# ---------------------------------------------------------------------- #
# invariant 1: 100% typed outcomes, nothing escapes
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_every_request_gets_a_typed_outcome(dataset, seed):
    plan = FaultPlan.random(
        150, rate=0.3, kinds=SERVING_FAULT_KINDS, seed=seed, seconds=0.12
    )
    service, clock, injector = make_chaos_service(dataset, plan)
    traces, responses = replay(service, clock, seed, 150)
    assert len(responses) == 150
    assert {r.status for r in responses} <= VALID_STATUSES
    assert injector.injected, "plan should have fired at least one fault"
    # outcome counters are consistent with the response stream
    metrics = service.metrics.snapshot()
    for status in VALID_STATUSES:
        assert metrics.get(f"status::{status}", 0) == sum(
            r.status == status for r in responses
        )


@pytest.mark.parametrize(
    "kinds",
    [("latency",), ("exception",), ("nan_scores",), SERVING_FAULT_KINDS],
)
def test_single_fault_kind_plans(dataset, kinds):
    plan = FaultPlan.random(80, rate=0.4, kinds=kinds, seed=5, seconds=0.12)
    service, clock, __ = make_chaos_service(dataset, plan)
    traces, responses = replay(service, clock, 5, 80)
    assert {r.status for r in responses} <= VALID_STATUSES
    assert any(r.degraded for r in responses)


# ---------------------------------------------------------------------- #
# invariant 2: breaker transitions match the plan, injected clock only
# ---------------------------------------------------------------------- #
def test_breaker_transitions_match_plan(dataset):
    plan = FaultPlan(
        [Fault(step=i, kind="exception") for i in range(3)]  # threshold = 3
    )
    service, clock, __ = make_chaos_service(dataset, plan, admission=False)
    breaker = service._breakers["primary"]

    # three faulted requests -> breaker opens exactly at the third
    for i in range(3):
        response = service.serve(ServeRequest(user_id=i))
        assert response.status == "degraded"
        assert response.fallback_used == "popular"
    assert breaker.state == "open"
    open_at = breaker.transitions[0]
    assert (open_at.from_state, open_at.to_state) == ("closed", "open")
    assert open_at.at == clock.now  # stamped by the injected clock

    # while open, the primary is never called: degraded via breaker rejection
    response = service.serve(ServeRequest(user_id=3))
    assert response.status == "degraded"
    assert service.metrics.counters["breaker_rejected::primary"] == 1

    # cooldown elapses on the manual clock -> half-open -> closed via probes
    clock.advance(1.0)
    for user in (4, 5):
        assert service.serve(ServeRequest(user_id=user)).status == "ok"
    assert breaker.state == "closed"
    assert [(t.from_state, t.to_state) for t in breaker.transitions] == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "closed"),
    ]
    # the whole lifecycle happened in virtual time
    assert clock.now == pytest.approx(1.0)


def test_half_open_probe_failure_reopens(dataset):
    plan = FaultPlan(
        [Fault(step=i, kind="exception") for i in (0, 1, 2, 3)]
    )
    service, clock, __ = make_chaos_service(dataset, plan, admission=False)
    breaker = service._breakers["primary"]
    for i in range(3):
        service.serve(ServeRequest(user_id=i))
    assert breaker.state == "open"
    clock.advance(1.0)
    # request 3 carries the probe and faults again -> reopen
    assert service.serve(ServeRequest(user_id=3)).status == "degraded"
    assert breaker.state == "open"
    assert [(t.from_state, t.to_state) for t in breaker.transitions] == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "open"),
    ]


# ---------------------------------------------------------------------- #
# fault-kind specific degradation paths
# ---------------------------------------------------------------------- #
def test_latency_fault_blows_deadline(dataset):
    plan = FaultPlan([Fault(step=0, kind="latency", seconds=0.2)])
    service, clock, __ = make_chaos_service(dataset, plan, deadline=0.05)
    response = service.serve(ServeRequest(user_id=0))
    assert response.status == "degraded"
    assert response.latency >= 0.2  # the injected stall is visible in metrics
    assert service.metrics.counters["deadline_exceeded::primary"] == 1
    assert service._breakers["primary"].snapshot()["consecutive_failures"] == 1


def test_nan_scores_fault_caught_at_boundary(dataset):
    plan = FaultPlan([Fault(step=0, kind="nan_scores")])
    service, clock, __ = make_chaos_service(dataset, plan)
    response = service.serve(ServeRequest(user_id=0))
    assert response.status == "degraded"
    assert service.metrics.counters["invalid_scores::primary"] == 1
    # NaNs never reach the response
    assert all(np.isfinite(s) for s in response.scores)


def test_exception_fault_isolated(dataset):
    plan = FaultPlan([Fault(step=0, kind="exception")])
    service, clock, __ = make_chaos_service(dataset, plan)
    response = service.serve(ServeRequest(user_id=0))
    assert response.status == "degraded"
    assert service.metrics.counters["rung_errors::primary"] == 1


def test_training_faults_ignored_by_serving_hooks(dataset):
    plan = FaultPlan([Fault(step=0, kind="raise"), Fault(step=0, kind="stall",
                                                         seconds=9.0)])
    service, clock, __ = make_chaos_service(dataset, plan)
    assert service.serve(ServeRequest(user_id=0)).status == "ok"
    assert clock.now < 9.0  # the stall never fired


# ---------------------------------------------------------------------- #
# load shedding under burst
# ---------------------------------------------------------------------- #
def test_burst_sheds_explicitly_and_recovers(dataset):
    service, clock, __ = make_chaos_service(dataset, FaultPlan())
    # no clock movement: a 10-request burst against capacity 4
    responses = [service.serve(ServeRequest(user_id=0)) for __ in range(10)]
    statuses = [r.status for r in responses]
    assert statuses[:4] == ["ok"] * 4
    assert statuses[4:] == ["shed"] * 6
    assert all("Overloaded" in r.error for r in responses[4:])
    assert service.admission.shed == 6
    clock.advance(1.0)  # backlog drains
    assert service.serve(ServeRequest(user_id=0)).status == "ok"


# ---------------------------------------------------------------------- #
# invariant 3: identical seeds -> bitwise-identical traces
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 11])
def test_same_seed_identical_traces(dataset, seed):
    def run():
        plan = FaultPlan.random(
            120, rate=0.25, kinds=SERVING_FAULT_KINDS, seed=seed, seconds=0.12
        )
        service, clock, __ = make_chaos_service(dataset, plan)
        traces, __ = replay(service, clock, seed, 120)
        return traces, service.breaker_transitions(), service.metrics.snapshot()

    first, second = run(), run()
    assert first[0] == second[0]  # response traces, bitwise
    assert first[1] == second[1]  # breaker transition log
    assert first[2] == second[2]  # full metrics snapshot


def test_different_seeds_differ(dataset):
    def run(seed):
        plan = FaultPlan.random(
            120, rate=0.25, kinds=SERVING_FAULT_KINDS, seed=seed, seconds=0.12
        )
        service, clock, __ = make_chaos_service(dataset, plan)
        return replay(service, clock, seed, 120)[0]

    assert run(0) != run(1)


# ---------------------------------------------------------------------- #
# the CLI smoke path CI runs
# ---------------------------------------------------------------------- #
def test_serve_demo_smoke_small():
    from repro.serving.demo import run_smoke

    report = run_smoke(seeds=(0,), num_requests=60)
    assert report.startswith("chaos smoke OK")
    assert "deterministic" in report
