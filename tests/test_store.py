"""Unit tests for the sharded embedding store (format, stores, checkpoints)."""

import numpy as np
import pytest

from repro.core.exceptions import (
    CheckpointError,
    StoreCorruptionError,
    StoreError,
)
from repro.kg.triples import TripleStore
from repro.kge.translational import TransE
from repro.runtime import TrainingRuntime
from repro.runtime.checkpoint import Checkpointer, load_checkpoint, save_checkpoint
from repro.store import (
    DenseStore,
    MmapShardStore,
    ShardInfo,
    StoreIO,
    inspect_store,
    load_shard,
    verify_shard,
    write_shard,
)
from repro.store.manifest import (
    build_manifest,
    load_manifest,
    manifest_bytes,
    parse_manifest,
    write_manifest,
)


def toy_triples(seed=0, num_entities=8, num_relations=2, n=24):
    rng = np.random.default_rng(seed)
    return TripleStore(
        rng.integers(num_entities, size=n),
        rng.integers(num_relations, size=n),
        rng.integers(num_entities, size=n),
        num_entities=num_entities,
        num_relations=num_relations,
    )


# ---------------------------------------------------------------------- #
# shard format
# ---------------------------------------------------------------------- #
class TestShardFormat:
    def test_round_trip(self, tmp_path):
        values = np.arange(12, dtype=np.float64).reshape(4, 3)
        info = write_shard(StoreIO(), tmp_path / "t-s0.shard", "t", 4, values)
        assert info.rows == 4 and info.row_start == 4
        header, loaded = load_shard(tmp_path / "t-s0.shard")
        assert header["table"] == "t"
        np.testing.assert_array_equal(loaded, values.astype(np.float32))

    def test_bitrot_detected(self, tmp_path):
        path = tmp_path / "t-s0.shard"
        write_shard(StoreIO(), path, "t", 0, np.ones((4, 3)))
        blob = bytearray(path.read_bytes())
        blob[-2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreCorruptionError, match="bitrot"):
            verify_shard(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "t-s0.shard"
        write_shard(StoreIO(), path, "t", 0, np.ones((4, 3)))
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])  # tear off the payload tail
        with pytest.raises(StoreCorruptionError, match="torn"):
            verify_shard(path)
        path.write_bytes(blob[: len(blob) // 4])  # tear mid-header
        with pytest.raises(StoreCorruptionError, match="truncated"):
            verify_shard(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t-s0.shard"
        path.write_bytes(b"NOTSHARD" + b"\x00" * 64)
        with pytest.raises(StoreCorruptionError, match="magic"):
            verify_shard(path)

    def test_manifest_cross_check(self, tmp_path):
        path = tmp_path / "t-s0.shard"
        info = write_shard(StoreIO(), path, "t", 0, np.ones((4, 3)))
        wrong = ShardInfo(file=info.file, row_start=4, rows=4, crc32=info.crc32)
        with pytest.raises(StoreCorruptionError, match="disagrees"):
            verify_shard(path, expected=wrong)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(3, {}, parent=2, tag="test", seed=7)
        path = write_manifest(StoreIO(), tmp_path, manifest)
        loaded = load_manifest(path)
        assert loaded["generation"] == 3
        assert loaded["parent"] == 2
        assert loaded["seed"] == 7

    def test_self_checksum_catches_tamper(self, tmp_path):
        manifest = build_manifest(1, {}, tag="x")
        data = manifest_bytes(manifest)
        tampered = data.replace(b'"tag": "x"', b'"tag": "y"')
        assert tampered != data
        with pytest.raises(StoreCorruptionError, match="checksum"):
            parse_manifest(tampered)

    def test_filename_generation_mismatch(self, tmp_path):
        manifest = build_manifest(5, {})
        (tmp_path / "manifest-g00000004.json").write_bytes(manifest_bytes(manifest))
        with pytest.raises(StoreCorruptionError, match="filename generation"):
            load_manifest(tmp_path / "manifest-g00000004.json")


# ---------------------------------------------------------------------- #
# DenseStore: the bitwise-compatible default
# ---------------------------------------------------------------------- #
class TestDenseStore:
    def test_register_is_identity(self):
        store = DenseStore()
        arr = np.zeros((4, 2))
        assert store.register("t", arr) is arr
        assert store.table("t") is arr
        assert store.table_for_array(arr) == "t"
        assert store.table_for_array(np.zeros((4, 2))) is None

    def test_training_bitwise_identical_to_seed_path(self):
        """A model with the default DenseStore trains exactly as before."""
        triples = toy_triples()
        explicit = TransE(8, 2, dim=4, seed=0, store=DenseStore())
        default = TransE(8, 2, dim=4, seed=0)
        h1 = explicit.fit(triples, epochs=2, batch_size=8, seed=0)
        h2 = default.fit(triples, epochs=2, batch_size=8, seed=0)
        assert h1 == h2
        np.testing.assert_array_equal(
            explicit.entity_embeddings(), default.entity_embeddings()
        )
        np.testing.assert_array_equal(
            explicit.relation_embeddings(), default.relation_embeddings()
        )

    def test_no_generations(self):
        store = DenseStore()
        store.register("t", np.zeros((2, 2)))
        assert store.commit() == 0
        with pytest.raises(StoreError):
            store.load_table("t", generation=3)


# ---------------------------------------------------------------------- #
# MmapShardStore
# ---------------------------------------------------------------------- #
class TestMmapStoreTraining:
    def test_commit_writes_only_dirty_shards(self, tmp_path):
        store = MmapShardStore.create(tmp_path, rows_per_shard=2)
        arr = store.register("t", np.zeros((6, 3)))
        gen1 = store.commit()  # everything dirty on first commit
        assert gen1 == 1
        files_after_gen1 = set(p.name for p in (tmp_path / "shards").iterdir())
        assert len(files_after_gen1) == 3
        arr[5, 0] = 1.0
        store.mark_dirty("t", [5])
        gen2 = store.commit()
        assert gen2 == 2
        new_files = set(
            p.name for p in (tmp_path / "shards").iterdir()
        ) - files_after_gen1
        assert new_files == {"t-g00000002-s00002.shard"}
        manifest = load_manifest(tmp_path / "manifest-g00000002.json")
        shard_files = [s["file"] for s in manifest["tables"]["t"]["shards"]]
        # shards 0 and 1 carried over by reference from generation 1
        assert shard_files[0].startswith("t-g00000001")
        assert shard_files[2].startswith("t-g00000002")
        store.close()

    def test_commit_with_nothing_dirty_is_noop(self, tmp_path):
        store = MmapShardStore.create(tmp_path)
        store.register("t", np.zeros((4, 2)))
        assert store.commit() == 1
        assert store.commit() == 1  # no dirty rows -> same generation
        store.close()

    def test_reopen_warm_starts_registered_arrays(self, tmp_path):
        store = MmapShardStore.create(tmp_path, rows_per_shard=2)
        arr = store.register("t", np.arange(8, dtype=np.float64).reshape(4, 2))
        store.commit()
        store.close()
        reopened = MmapShardStore.open(tmp_path, mode="train")
        fresh = reopened.register("t", np.zeros((4, 2)))
        np.testing.assert_array_equal(fresh, arr.astype(np.float32))
        reopened.close()

    def test_mmap_training_close_to_dense(self, tmp_path):
        """Store-backed training matches dense within float32 round-trips.

        In a single run nothing is ever read back from disk, so the match
        is exact; the float32 tolerance documented in docs/storage.md
        applies to values *reloaded* across commits (see
        test_reopen_warm_starts_registered_arrays).
        """
        triples = toy_triples()
        dense = TransE(8, 2, dim=4, seed=0)
        dense.fit(triples, epochs=2, batch_size=8, seed=0)
        store = MmapShardStore.create(tmp_path, rows_per_shard=4)
        stored = TransE(8, 2, dim=4, seed=0, store=store)
        stored.fit(triples, epochs=2, batch_size=8, seed=0)
        np.testing.assert_allclose(
            stored.entity_embeddings(), dense.entity_embeddings(),
            rtol=0, atol=1e-6,
        )
        store.close()

    def test_load_table_round_trips_committed_state(self, tmp_path):
        store = MmapShardStore.create(tmp_path, rows_per_shard=2)
        arr = store.register("t", np.random.default_rng(0).normal(size=(5, 3)))
        store.commit()
        loaded = store.load_table("t")
        np.testing.assert_array_equal(loaded, arr.astype(np.float32))
        store.close()

    def test_register_shape_mismatch(self, tmp_path):
        store = MmapShardStore.create(tmp_path)
        store.register("t", np.zeros((4, 2)))
        store.commit()
        store.close()
        reopened = MmapShardStore.open(tmp_path, mode="train")
        with pytest.raises(StoreError, match="shape"):
            reopened.register("t", np.zeros((5, 2)))
        reopened.close()


class TestMmapStoreServing:
    def make_store(self, tmp_path, rows=6, dim=3, rows_per_shard=2):
        store = MmapShardStore.create(tmp_path, rows_per_shard=rows_per_shard)
        arr = store.register(
            "t", np.arange(rows * dim, dtype=np.float64).reshape(rows, dim)
        )
        store.commit()
        arr[0] = -1.0
        store.mark_dirty("t", [0])
        store.commit()
        store.close()
        return arr

    def test_sharded_table_gather_and_matmul(self, tmp_path):
        arr = self.make_store(tmp_path)
        store = MmapShardStore.open(tmp_path, mode="serve")
        table = store.table("t")
        np.testing.assert_array_equal(
            table.gather([0, 3, 5]), arr[[0, 3, 5]].astype(np.float32)
        )
        np.testing.assert_array_equal(table[1], arr[1].astype(np.float32))
        v = np.ones(3, dtype=np.float32)
        np.testing.assert_allclose(table @ v, arr.astype(np.float32) @ v)
        np.testing.assert_array_equal(table.to_array(), arr.astype(np.float32))
        assert table.shape == (6, 3)
        store.close()

    def test_remap_moves_no_arrays(self, tmp_path):
        """Promotion's core mechanic: generation swap without copies."""
        self.make_store(tmp_path)
        store = MmapShardStore.open(tmp_path, mode="serve")
        table = store.table("t")
        assert store.generation == 2
        v2_row0 = table[0].copy()
        before = [id(s) for s in table._shards]
        assert store.remap(1) == 1
        # Same view object; its internal maps re-pointed, nothing copied.
        assert store.table("t") is table
        assert all(isinstance(s, np.memmap) for s in table._shards)
        assert [id(s) for s in table._shards] != before
        assert not np.array_equal(table[0], v2_row0)
        assert store.remap() == 2  # back to newest
        np.testing.assert_array_equal(table[0], v2_row0)
        store.close()

    def test_serve_mode_is_read_only(self, tmp_path):
        self.make_store(tmp_path)
        store = MmapShardStore.open(tmp_path, mode="serve")
        with pytest.raises(StoreError, match="serve mode"):
            store.register("t", np.zeros((6, 3)))
        with pytest.raises(StoreError, match="serve mode"):
            store.commit()
        store.close()

    def test_closed_store_raises(self, tmp_path):
        self.make_store(tmp_path)
        store = MmapShardStore.open(tmp_path, mode="serve")
        table = store.table("t")
        store.close()
        with pytest.raises(StoreError, match="closed"):
            table.gather([0])
        with pytest.raises(StoreError, match="closed"):
            store.table("t")

    def test_out_of_range_gather(self, tmp_path):
        self.make_store(tmp_path)
        store = MmapShardStore.open(tmp_path, mode="serve")
        with pytest.raises(StoreError, match="out of range"):
            store.table("t").gather([99])
        store.close()


class TestRecovery:
    def test_corrupt_newest_falls_back(self, tmp_path):
        store = MmapShardStore.create(tmp_path, rows_per_shard=2)
        arr = store.register("t", np.zeros((4, 2)))
        store.commit()
        gen1 = store.load_table("t").copy()
        arr[:] = 7.0
        store.mark_dirty("t")
        store.commit()
        store.close()
        # rot every generation-2 shard
        for path in (tmp_path / "shards").glob("t-g00000002-*.shard"):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
        recovered = MmapShardStore.open(tmp_path, mode="train")
        assert recovered.generation == 1
        np.testing.assert_array_equal(recovered.load_table("t"), gen1)
        recovered.close()
        # the broken generation was quarantined, not deleted
        report = inspect_store(tmp_path)
        assert any("manifest-g00000002" in q for q in report.quarantined)

    def test_open_nothing_consistent_raises(self, tmp_path):
        store = MmapShardStore.create(tmp_path)
        store.register("t", np.zeros((2, 2)))
        store.commit()
        store.close()
        for path in tmp_path.glob("manifest-g*.json"):
            path.write_bytes(b"garbage")
        with pytest.raises(StoreError, match="no consistent generation"):
            MmapShardStore.open(tmp_path)

    def test_open_non_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not an embedding store"):
            MmapShardStore.open(tmp_path / "nope")


# ---------------------------------------------------------------------- #
# checkpoint integration
# ---------------------------------------------------------------------- #
class FakeParam:
    def __init__(self, data):
        self.data = np.asarray(data, dtype=np.float64)


class TestCheckpointChecksums:
    def test_checksums_written_and_verified(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, [FakeParam(np.ones((3, 2)))], step=1)
        ckpt = load_checkpoint(path)
        assert ckpt.step == 1
        np.testing.assert_array_equal(ckpt.params[0], np.ones((3, 2)))

    def test_corrupt_array_rejected(self, tmp_path):
        """A flipped parameter byte fails the v2 content checksum."""
        import json
        import zipfile

        path = tmp_path / "c.npz"
        save_checkpoint(path, [FakeParam(np.ones((3, 2)))], step=1)
        # rewrite the param entry with different bytes but identical shape
        with np.load(path) as archive:
            arrays = {k: archive[k].copy() for k in archive.files}
        arrays["param__0000"][0, 0] = 5.0
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_skip_to_newest_loadable_still_works(self, tmp_path):
        ckpt = Checkpointer(tmp_path, every=1, keep=3)
        params = [FakeParam(np.zeros((2, 2)))]
        ckpt.save(0, params)
        params[0].data[:] = 1.0
        newest = ckpt.save(1, params)
        newest.write_bytes(b"truncated")
        loaded = ckpt.load_latest()
        assert loaded.step == 0

    def test_version_1_archives_still_load(self, tmp_path):
        """Backward compatibility: pre-checksum archives load unchanged."""
        import json

        path = tmp_path / "c.npz"
        save_checkpoint(path, [FakeParam(np.ones((2, 2)))], step=3)
        with np.load(path) as archive:
            arrays = {k: archive[k].copy() for k in archive.files}
        meta = json.loads(bytes(arrays["__meta__"].tobytes()).decode())
        meta["version"] = 1
        del meta["checksums"]
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        assert load_checkpoint(path).step == 3


class TestStoreBackedCheckpoints:
    def test_store_params_not_in_npz(self, tmp_path):
        store = MmapShardStore.create(tmp_path / "store", rows_per_shard=2)
        owned = store.register("emb", np.ones((4, 2)))
        extra_param = FakeParam(np.full((2, 2), 3.0))
        params = [FakeParam(owned), extra_param]
        params[0].data = owned  # identity: the store owns this buffer
        path = tmp_path / "c.npz"
        save_checkpoint(path, params, step=0, store=store)
        with np.load(path) as archive:
            keys = set(archive.files)
        assert "param__0001" in keys and "param__0000" not in keys
        ckpt = load_checkpoint(path)
        assert ckpt.store_params == {0: "emb"}
        assert ckpt.store_generation == 1
        store.close()

    def test_restore_reads_table_at_pinned_generation(self, tmp_path):
        store = MmapShardStore.create(tmp_path / "store", rows_per_shard=2)
        owned = store.register("emb", np.ones((4, 2)))
        params = [FakeParam(owned)]
        params[0].data = owned
        path = tmp_path / "c.npz"
        save_checkpoint(path, params, step=0, store=store)  # generation 1
        owned[:] = 9.0
        store.mark_dirty("emb")
        store.commit()  # generation 2
        ckpt = load_checkpoint(path)
        ckpt.restore(params, store=store)
        np.testing.assert_array_equal(owned, np.ones((4, 2)))
        store.close()

    def test_restore_without_store_fails(self, tmp_path):
        store = MmapShardStore.create(tmp_path / "store")
        owned = store.register("emb", np.ones((4, 2)))
        params = [FakeParam(owned)]
        params[0].data = owned
        path = tmp_path / "c.npz"
        save_checkpoint(path, params, step=0, store=store)
        with pytest.raises(CheckpointError, match="store"):
            load_checkpoint(path).restore(params)
        store.close()

    def test_checkpointer_skips_checkpoint_with_missing_generation(self, tmp_path):
        store = MmapShardStore.create(tmp_path / "store", rows_per_shard=2)
        owned = store.register("emb", np.zeros((4, 2)))
        params = [FakeParam(owned)]
        params[0].data = owned
        ckpt = Checkpointer(tmp_path / "ckpt", every=1, keep=3, store=store)
        ckpt.save(0, params)  # generation 1
        owned[:] = 1.0
        store.mark_dirty("emb")
        ckpt.save(1, params)  # generation 2
        store.close()
        # rot generation 2's manifest, then resume: must fall back to step 0
        (tmp_path / "store" / "manifest-g00000002.json").write_bytes(b"junk")
        reopened = MmapShardStore.open(tmp_path / "store", mode="train")
        fresh = reopened.register("emb", np.full((4, 2), 5.0))
        params2 = [FakeParam(fresh)]
        params2[0].data = fresh
        ckpt2 = Checkpointer(tmp_path / "ckpt", every=1, keep=3, store=reopened)
        restored = ckpt2.restore_latest(params2)
        assert restored.step == 0
        np.testing.assert_array_equal(fresh, np.zeros((4, 2)))
        reopened.close()

    def test_fit_resume_through_store_backed_checkpointer(self, tmp_path):
        """An interrupted store-backed fit resumes and finishes cleanly."""
        triples = toy_triples()
        store = MmapShardStore.create(tmp_path / "store", rows_per_shard=4)
        model = TransE(8, 2, dim=4, seed=0, store=store)
        runtime = TrainingRuntime(
            checkpointer=Checkpointer(tmp_path / "ckpt", every=1, store=store)
        )
        model.fit(triples, epochs=2, batch_size=8, seed=0, runtime=runtime)
        assert store.generation == 2
        store.close()

        reopened = MmapShardStore.open(tmp_path / "store", mode="train")
        resumed = TransE(8, 2, dim=4, seed=0, store=reopened)
        runtime2 = TrainingRuntime(
            checkpointer=Checkpointer(tmp_path / "ckpt", every=1, store=reopened)
        )
        history = resumed.fit(
            triples, epochs=3, batch_size=8, seed=0, runtime=runtime2
        )
        assert len(history) == 3  # two epochs resumed from disk + one new
        assert reopened.generation == 3
        reopened.close()
