"""Durability harness + serving integration tests for `repro.store`.

The headline invariant under test: however a crash or corruption lands,
re-opening the store yields a state bitwise equal to exactly one
committed generation — old or new, never a hybrid — and the serving
stack keeps answering with typed outcomes while the store underneath it
is broken.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.core.exceptions import StoreError
from repro.data import MOVIE_SCHEMA, generate_dataset
from repro.kg.triples import TripleStore
from repro.kge.translational import TransE
from repro.models.baselines import MostPopular
from repro.serving import ManualClock, RecommenderService, ServeRequest
from repro.store import MmapShardStore, StoredEmbeddingRecommender
from repro.store.harness import (
    ScenarioConfig,
    make_corrupted_store,
    run_crash_matrix,
    run_scenario,
)
from repro.telemetry import Telemetry

SMALL = ScenarioConfig(num_entities=6, num_triples=12, dim=3, epochs=2,
                       batch_size=6, rows_per_shard=3)


# ---------------------------------------------------------------------- #
# the crash matrix
# ---------------------------------------------------------------------- #
class TestCrashMatrix:
    def test_scenario_is_deterministic(self, tmp_path):
        a = run_scenario(tmp_path / "a", seed=0, config=SMALL)
        b = run_scenario(tmp_path / "b", seed=0, config=SMALL)
        assert a.history == b.history
        assert a.generations == b.generations == (0, 1, 2)
        assert a.num_ops == b.num_ops > 0

    def test_every_fault_kind_at_sampled_ops(self, tmp_path):
        """Old-or-new, never hybrid, at every sampled (op, kind) cell.

        The full sweep runs in CI (``python -m repro durability-smoke``);
        here a stride keeps tier-1 fast while still crossing shard
        writes, manifest writes, and both rename sides.
        """
        clean = run_scenario(tmp_path / "probe", seed=0, config=SMALL)
        ops = tuple(range(0, clean.num_ops, 3)) + (clean.num_ops - 1,)
        result = run_crash_matrix(
            tmp_path / "matrix", seed=0, ops=ops, config=SMALL
        )
        assert result.reference_generations == (0, 1, 2)
        assert len(result.cells) == len(set(ops)) * 5
        assert result.violations == []
        # Sanity: the faults actually fired (crashes or aborted commits).
        assert any(c.crashed for c in result.cells)

    def test_fsync_failure_is_retryable(self, tmp_path):
        """An aborted commit (fsync error) keeps dirty rows for retry."""
        from repro.runtime.faults import Fault, FaultInjector, FaultPlan
        from repro.store.io import FaultingStoreIO

        injector = FaultInjector(FaultPlan([Fault(step=2, kind="fsync_fail")]))
        store = MmapShardStore.create(
            tmp_path, rows_per_shard=2, io=FaultingStoreIO(injector)
        )
        arr = store.register("t", np.ones((4, 2)))
        with pytest.raises(StoreError):
            store.commit()
        assert store.dirty_row_count("t") == 4  # nothing silently dropped
        assert store.commit() == 1  # retry succeeds past the planned fault
        np.testing.assert_array_equal(store.load_table("t"), arr)
        store.close()

    def test_make_corrupted_store_breaks_only_newest(self, tmp_path):
        store_dir = make_corrupted_store(tmp_path, seed=0, config=SMALL)
        from repro.store import inspect_store

        report = inspect_store(store_dir)
        by_gen = {g.generation: g.ok for g in report.generations}
        assert by_gen[2] is False
        assert by_gen[1] is True
        assert report.current == 1


# ---------------------------------------------------------------------- #
# property: random corruption never yields a hybrid-generation open
# ---------------------------------------------------------------------- #
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@pytest.fixture(scope="module")
def pristine_store(tmp_path_factory):
    """One committed 3-generation store plus its per-generation fingerprints."""
    workdir = tmp_path_factory.mktemp("pristine")
    scenario = run_scenario(workdir, seed=0, config=SMALL)
    references = {}
    for gen in scenario.generations:
        store = MmapShardStore.open(
            scenario.store_dir, mode="train", generation=gen, quarantine=False
        )
        references[gen] = {
            name: store.load_table(name).astype("<f4").tobytes()
            for name in store.table_names()
        }
        store.close()
    files = sorted(
        p.relative_to(scenario.store_dir)
        for p in scenario.store_dir.rglob("*")
        if p.is_file()
    )
    return scenario.store_dir, references, files


class TestCorruptionProperty:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        file_pick=st.integers(min_value=0, max_value=10_000),
        offset_frac=st.floats(min_value=0.0, max_value=1.0),
        mutation=st.sampled_from(["flip", "truncate", "garbage", "delete"]),
        flip_mask=st.integers(min_value=1, max_value=255),
    )
    def test_single_file_corruption_never_hybrid(
        self, pristine_store, file_pick, offset_frac, mutation, flip_mask
    ):
        src, references, files = pristine_store
        target_rel = files[file_pick % len(files)]
        with tempfile.TemporaryDirectory(prefix="corrupt-prop-") as tmp:
            work = Path(tmp) / "store"
            shutil.copytree(src, work)
            target = work / target_rel
            blob = bytearray(target.read_bytes())
            offset = min(int(offset_frac * len(blob)), len(blob) - 1)
            if mutation == "flip":
                blob[offset] ^= flip_mask
                target.write_bytes(bytes(blob))
            elif mutation == "truncate":
                target.write_bytes(bytes(blob[:offset]))
            elif mutation == "garbage":
                target.write_bytes(b"\xde\xad\xbe\xef" * 8)
            else:
                target.unlink()
            try:
                store = MmapShardStore.open(work, mode="train")
            except StoreError:
                return  # refusing to open is always safe
            try:
                gen = store.generation
                state = {
                    name: store.load_table(name).astype("<f4").tobytes()
                    for name in store.table_names()
                }
            finally:
                store.close()
            assert gen in references, (
                f"recovered uncommitted generation {gen} after {mutation} "
                f"of {target_rel}"
            )
            assert state == references[gen], (
                f"hybrid state at generation {gen} after {mutation} "
                f"of {target_rel}"
            )


# ---------------------------------------------------------------------- #
# store-backed serving: hot swap without copies, typed degradation
# ---------------------------------------------------------------------- #
def train_store(workdir, num_users, num_items, generations=2, seed=0):
    """Train a small TransE over a lifted user+item entity space."""
    num_entities = num_users + num_items
    rng = np.random.default_rng(seed)
    triples = TripleStore(
        rng.integers(num_users, size=30),
        np.zeros(30, dtype=np.int64),
        rng.integers(num_users, num_entities, size=30),
        num_entities=num_entities,
        num_relations=1,
    )
    store = MmapShardStore.create(workdir, rows_per_shard=4, seed=seed)
    model = TransE(num_entities, 1, dim=4, seed=seed, store=store)
    for __ in range(generations):
        model.fit(triples, epochs=1, batch_size=8, seed=seed)
        store.commit()
    store.close()


@pytest.fixture()
def served_store(tmp_path):
    dataset = generate_dataset(MOVIE_SCHEMA, num_users=8, num_items=10, seed=0)
    train_store(tmp_path / "store", dataset.num_users, dataset.num_items)
    store = MmapShardStore.open(tmp_path / "store", mode="serve")
    model = StoredEmbeddingRecommender(
        store,
        user_entities=np.arange(dataset.num_users),
        item_entities=np.arange(
            dataset.num_users, dataset.num_users + dataset.num_items
        ),
    ).fit(dataset)
    yield dataset, store, model
    store.close()


class TestStoredServing:
    def test_scores_match_tables(self, served_store):
        dataset, store, model = served_store
        scores = model.score_all(3)
        entities = store.table("entity").to_array().astype(np.float64)
        expected = entities[8:18] @ entities[3]
        np.testing.assert_allclose(scores, expected)

    def test_promote_records_generation_and_moves_no_arrays(self, served_store):
        dataset, store, model = served_store
        table = store.table("entity")
        service = RecommenderService(
            dataset,
            primary=("stored", model),
            fallbacks=[("popular", MostPopular().fit(dataset))],
            clock=ManualClock(),
        )
        record = service.registry.history[-1]
        assert record.promoted and record.generation == store.generation
        assert "store generation" in record.describe()
        # The hot swap re-pointed nothing: the served table object is the
        # exact object from before promotion, holding the same memmaps.
        assert store.table("entity") is table
        maps_before = [id(m) for m in table._shards]
        model.refresh(1)
        assert store.table("entity") is table  # remap also moves no arrays
        assert [id(m) for m in table._shards] != maps_before
        record2 = service.promote("stored-g1", model)
        assert record2.generation == 1

    def test_broken_store_degrades_typed_never_raises(self, served_store):
        dataset, store, model = served_store
        service = RecommenderService(
            dataset,
            primary=("stored", model),
            fallbacks=[("popular", MostPopular().fit(dataset))],
            clock=ManualClock(),
        )
        assert service.serve(ServeRequest(user_id=2, k=3)).status == "ok"
        store.close()  # every subsequent gather raises StoreError
        for user in range(dataset.num_users):
            response = service.serve(ServeRequest(user_id=user, k=3))
            assert response.status == "degraded"
            assert response.model in ("popular", "static")
            assert response.items  # still a real recommendation list

    def test_corrupted_newest_generation_still_serves(self, tmp_path):
        """store-verify --repair flow, end to end through the service."""
        store_dir = make_corrupted_store(tmp_path, seed=0, config=SMALL)
        from repro.store import repair_store

        report, actions = repair_store(store_dir)
        assert report.current == 1
        assert any("quarantined" in a for a in actions)
        store = MmapShardStore.open(store_dir, mode="serve")
        assert store.generation == 1
        assert store.table("entity").to_array().shape[0] == SMALL.num_entities
        store.close()


class TestStoreVerifyCLI:
    """`python -m repro store-verify` exit semantics, end to end."""

    def test_healthy_store_passes(self, tmp_path, capsys):
        from repro.__main__ import main

        run_scenario(tmp_path, seed=0, config=SMALL)
        assert main(["store-verify", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "current generation: 2" in out and "BROKEN" not in out

    def test_corrupt_store_fails_then_repairs(self, tmp_path, capsys):
        from repro.__main__ import main

        store_dir = make_corrupted_store(tmp_path, seed=0, config=SMALL)
        with pytest.raises(SystemExit) as excinfo:
            main(["store-verify", str(store_dir)])
        assert "BROKEN" in str(excinfo.value)
        assert "--repair" in str(excinfo.value)
        assert main(["store-verify", str(store_dir), "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert main(["store-verify", str(store_dir)]) == 0  # clean now

    def test_not_a_store_fails(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="FAILED"):
            main(["store-verify", str(tmp_path / "nothing-here")])


class TestSeededCanary:
    def make(self, dataset, **kwargs):
        return RecommenderService(
            dataset,
            primary=("popular", MostPopular().fit(dataset)),
            clock=ManualClock(),
            **kwargs,
        )

    def test_default_keeps_lowest_id_prefix(self):
        dataset = generate_dataset(MOVIE_SCHEMA, num_users=20, num_items=15, seed=0)
        service = self.make(dataset, canary_size=4)
        record = service.registry.history[-1]
        assert record.canary_users == (0, 1, 2, 3)
        assert record.canary_seed is None

    def test_seeded_canary_reproducible_and_recorded(self):
        dataset = generate_dataset(MOVIE_SCHEMA, num_users=20, num_items=15, seed=0)
        a = self.make(dataset, canary_size=6, canary_seed=7)
        b = self.make(dataset, canary_size=6, canary_seed=7)
        c = self.make(dataset, canary_size=6, canary_seed=8)
        users_a = a.registry.history[-1].canary_users
        assert users_a == b.registry.history[-1].canary_users
        assert users_a != c.registry.history[-1].canary_users
        assert users_a != tuple(range(6))  # not the legacy prefix
        assert len(set(users_a)) == 6  # drawn without replacement
        assert a.registry.history[-1].canary_seed == 7
        # An audit can regenerate the batch from the recorded seed.
        rng = np.random.default_rng(7)
        regenerated = tuple(
            int(u) for u in rng.choice(dataset.num_users, size=6, replace=False)
        )
        assert users_a == regenerated

    def test_canary_attributes_on_promote_span(self):
        dataset = generate_dataset(MOVIE_SCHEMA, num_users=12, num_items=9, seed=0)
        telemetry = Telemetry()
        service = self.make(
            dataset, canary_size=4, canary_seed=3, telemetry=telemetry
        )
        spans = [s for s in telemetry.tracer.records() if s.name == "serve/promote"]
        assert spans, "promotion emitted no serve/promote span"
        attrs = spans[-1].attrs
        assert attrs["canary_seed"] == 3
        assert tuple(attrs["canary_users"]) == service.registry.history[-1].canary_users
        assert attrs["outcome"] == "promoted"
