"""Vectorized ``generate_dataset`` vs the loop reference, bit for bit.

The default (exact) mode of the vectorized generator must consume the RNG
stream in the same order as the original loop implementation (kept as
:mod:`repro.data._reference`), so every artifact — interactions, ratings,
triples, latents, text features — is bitwise-identical for the same seed.
A hypothesis property test sweeps random schemas, sizes, seeds, and knobs;
further tests pin the ``fast=True`` escape hatch (deterministic, same
structure, different stream), the chunked large-world path, the Zipf
activity law, and the ``per_item``/``count`` clamp satellite fix.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import ConfigError, DataError
from repro.data._reference import generate_dataset_reference
from repro.data.scenarios import SCENARIO_SCHEMAS
from repro.data.synthetic import AttributeSpec, ScenarioSchema, generate_dataset


def assert_datasets_equal(a, b):
    ca, cb = a.interactions.to_csr(), b.interactions.to_csr()
    assert np.array_equal(ca.indptr, cb.indptr)
    assert np.array_equal(ca.indices, cb.indices)
    assert np.array_equal(ca.data, cb.data)
    assert a.interactions.has_ratings == b.interactions.has_ratings
    sa, sb = a.kg.store, b.kg.store
    assert np.array_equal(sa.heads, sb.heads)
    assert np.array_equal(sa.relations, sb.relations)
    assert np.array_equal(sa.tails, sb.tails)
    assert a.kg.entity_labels == b.kg.entity_labels
    assert a.kg.relation_labels == b.kg.relation_labels
    assert np.array_equal(a.kg.entity_types, b.kg.entity_types)
    assert np.array_equal(a.extra["user_latent"], b.extra["user_latent"])
    assert np.array_equal(a.extra["item_latent"], b.extra["item_latent"])
    if a.item_text is None:
        assert b.item_text is None
    else:
        assert np.array_equal(a.item_text, b.item_text)


@st.composite
def schemas(draw):
    n_attrs = draw(st.integers(1, 3))
    specs = []
    informative_flags = draw(
        st.lists(st.booleans(), min_size=n_attrs, max_size=n_attrs).filter(any)
    )
    for i in range(n_attrs):
        count = draw(st.integers(2, 12))
        lo = draw(st.integers(1, min(4, count)))
        hi = draw(st.integers(lo, 6))  # hi may exceed count: exercises the clamp
        specs.append(
            AttributeSpec(
                name=f"attr{i}",
                relation=f"rel{i}",
                count=count,
                per_item=(lo, hi),
                informative=informative_flags[i],
            )
        )
    links = ()
    if n_attrs >= 2 and draw(st.booleans()):
        links = (("attr0", "linked_to", "attr1", draw(st.integers(1, 3))),)
    text_dim = draw(st.sampled_from((0, 0, 4)))
    return ScenarioSchema(
        scenario="prop",
        item_type="thing",
        attributes=tuple(specs),
        attribute_links=links,
        text_dim=text_dim,
    )


class TestExactParity:
    @settings(max_examples=25, deadline=None)
    @given(
        schema=schemas(),
        seed=st.integers(0, 2**31 - 1),
        num_users=st.integers(2, 24),
        num_items=st.integers(8, 30),
        kg_signal=st.sampled_from((1.0, 0.7, 0.0)),
        explicit=st.booleans(),
    )
    def test_bitwise_equal_to_loop_reference(
        self, schema, seed, num_users, num_items, kg_signal, explicit
    ):
        kwargs = dict(
            num_users=num_users,
            num_items=num_items,
            mean_interactions=6.0,
            kg_signal=kg_signal,
            explicit_ratings=explicit,
            seed=seed,
        )
        assert_datasets_equal(
            generate_dataset(schema, **kwargs),
            generate_dataset_reference(schema, **kwargs),
        )

    @pytest.mark.parametrize("name", sorted(SCENARIO_SCHEMAS))
    def test_scenario_schemas_match_reference(self, name):
        schema = SCENARIO_SCHEMAS[name]
        kwargs = dict(num_users=40, num_items=60, mean_interactions=8.0, seed=11)
        assert_datasets_equal(
            generate_dataset(schema, **kwargs),
            generate_dataset_reference(schema, **kwargs),
        )


class TestFastMode:
    def test_deterministic_per_seed(self):
        schema = SCENARIO_SCHEMAS["movie"]
        kwargs = dict(num_users=50, num_items=70, fast=True, seed=5)
        assert_datasets_equal(
            generate_dataset(schema, **kwargs), generate_dataset(schema, **kwargs)
        )

    def test_structure_matches_schema(self):
        schema = SCENARIO_SCHEMAS["movie"]
        ds = generate_dataset(schema, num_users=50, num_items=70, fast=True, seed=5)
        store = ds.kg.store
        # No duplicate facts, all ids in range (TripleStore validates), and
        # per-item link counts within each type's per_item bounds.
        for rel_id, spec in enumerate(schema.attributes):
            heads = store.heads[store.relations == rel_id]
            counts = np.bincount(heads, minlength=70)[:70]
            lo, hi = spec.per_item
            assert counts.min() >= min(lo, spec.count) or counts.min() >= 0
            assert counts.max() <= min(hi, spec.count)
        # Every item still carries informative signal.
        assert np.isfinite(ds.extra["item_latent"]).all()

    def test_faithful_links_when_full_signal(self):
        """At kg_signal=1.0 fast mode publishes links aligned with latents."""
        schema = SCENARIO_SCHEMAS["book"]
        ds = generate_dataset(schema, num_users=30, num_items=40, fast=True, seed=2)
        assert ds.kg.store.num_triples > 0


class TestScalePaths:
    def test_chunked_scores_deterministic(self):
        """Worlds above the chunk threshold generate reproducibly."""
        schema = SCENARIO_SCHEMAS["movie"]
        # 3000 * 1500 > 2^22 forces the chunked score path.
        kwargs = dict(num_users=3000, num_items=1500, mean_interactions=5.0,
                      fast=True, seed=9)
        a = generate_dataset(schema, **kwargs)
        b = generate_dataset(schema, **kwargs)
        assert_datasets_equal(a, b)
        assert a.interactions.nnz >= 2 * 3000

    def test_zipf_activity(self):
        schema = SCENARIO_SCHEMAS["movie"]
        ds = generate_dataset(
            schema, num_users=400, num_items=120, mean_interactions=8.0,
            activity="zipf", fast=True, seed=3,
        )
        degrees = ds.interactions.user_degrees()
        assert degrees.min() >= 2
        # Power-law long tail: the busiest user is far above the median.
        assert degrees.max() >= 4 * np.median(degrees)

    def test_unknown_activity_rejected(self):
        with pytest.raises(ConfigError, match="activity"):
            generate_dataset(SCENARIO_SCHEMAS["movie"], activity="uniform")

    def test_zipf_exponent_must_have_mean(self):
        with pytest.raises(ConfigError, match="zipf_exponent"):
            generate_dataset(SCENARIO_SCHEMAS["movie"], activity="zipf",
                             zipf_exponent=1.5)


class TestClampSatellite:
    def _schema(self, per_item, count=3):
        return ScenarioSchema(
            scenario="clamp", item_type="thing",
            attributes=(
                AttributeSpec("tag", "has_tag", count=count, per_item=per_item),
            ),
        )

    @pytest.mark.parametrize("fast", (False, True))
    def test_minimum_above_count_raises_named_error(self, fast):
        with pytest.raises(DataError, match="'tag'.*per_item minimum 5"):
            generate_dataset(self._schema((5, 8)), num_users=8, num_items=10,
                             fast=fast, seed=0)

    @pytest.mark.parametrize("fast", (False, True))
    def test_draws_above_count_are_clamped_and_terminate(self, fast):
        """Used to loop forever in ``while len(chosen) < k``; now clamps."""
        ds = generate_dataset(self._schema((2, 9)), num_users=8, num_items=10,
                              fast=fast, seed=0)
        counts = np.bincount(ds.kg.store.heads, minlength=10)[:10]
        assert counts.max() <= 3

    def test_reference_oracle_agrees_on_clamped_schema(self):
        schema = self._schema((2, 9))
        kwargs = dict(num_users=8, num_items=10, seed=4)
        assert_datasets_equal(
            generate_dataset(schema, **kwargs),
            generate_dataset_reference(schema, **kwargs),
        )

    @pytest.mark.parametrize("fast", (False, True))
    def test_zero_count_rejected(self, fast):
        with pytest.raises(DataError, match="count must be >= 1"):
            generate_dataset(self._schema((1, 1), count=0), num_users=8,
                             num_items=10, fast=fast, seed=0)
