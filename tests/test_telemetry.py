"""Unit tests for `repro.telemetry`: tracer, metrics, export, profiling.

Covers the observability subsystem's own invariants (span nesting on an
injected clock, exact small-sample quantiles, JSONL round-trips) and its
non-interference contract: telemetry off must record nothing and training
must be bitwise identical with telemetry on vs off.
"""

import json
import math

import numpy as np
import pytest

from repro.core.clock import ManualClock
from repro.core.exceptions import DataError
from repro.data import make_movie_dataset
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import NeighborCache, corrupt_batch
from repro.kg.triples import TripleStore
from repro.kge.translational import TransE
from repro.serving.metrics import ServiceMetrics
from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL,
    Histogram,
    MetricRegistry,
    NullTelemetry,
    SCHEMA_VERSION,
    Telemetry,
    Tracer,
    activate,
    activated,
    exact_quantile,
    export_records,
    get_active,
    read_jsonl,
    render_trace_report,
    timed,
    timed_block,
    validate_records,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _deactivate():
    """Every test starts and ends with no active telemetry."""
    previous = activate(None)
    yield
    activate(previous)


def small_store(seed=0):
    rng = np.random.default_rng(seed)
    n = 40
    heads = rng.integers(0, 12, size=n)
    rels = rng.integers(0, 3, size=n)
    tails = rng.integers(0, 12, size=n)
    return TripleStore(heads, rels, tails, num_entities=12, num_relations=3)


# --------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------- #
class TestTracer:
    def test_span_nesting_and_ordering_on_manual_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        outer = tracer.begin("outer")
        clock.advance(1.0)
        inner = tracer.begin("inner")
        clock.advance(0.25)
        tracer.end(inner)
        clock.advance(0.5)
        tracer.end(outer)

        records = tracer.records()
        # End order: children land before their parents.
        assert [r.name for r in records] == ["inner", "outer"]
        by_name = {r.name: r for r in records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].start == 1.0
        assert by_name["inner"].duration == 0.25
        assert by_name["outer"].duration == 1.75

    def test_sequential_ids_and_sibling_parentage(self):
        tracer = Tracer(clock=ManualClock())
        root = tracer.begin("root")
        a = tracer.begin("a")
        tracer.end(a)
        b = tracer.begin("b")
        tracer.end(b)
        tracer.end(root)
        assert [s.span_id for s in (root, a, b)] == [0, 1, 2]
        # Both siblings hang off the root, not off each other.
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_end_is_idempotent(self):
        tracer = Tracer(clock=ManualClock())
        span = tracer.begin("once")
        assert tracer.end(span) is not None
        assert tracer.end(span) is None
        assert len(tracer.records()) == 1

    def test_out_of_order_end_cleans_stack(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        outer = tracer.begin("outer")
        tracer.begin("leaked")  # never explicitly ended
        tracer.end(outer)  # ends outer while 'leaked' still open
        after = tracer.begin("after")
        tracer.end(after)
        assert after.parent_id is None  # stack was repaired, not poisoned

    def test_context_manager_records_error_type(self):
        tracer = Tracer(clock=ManualClock())
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        (record,) = tracer.records()
        assert record.attrs["error"] == "ValueError"

    def test_bounded_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(clock=ManualClock(), max_spans=3)
        for i in range(5):
            tracer.end(tracer.begin(f"s{i}"))
        records = tracer.records()
        assert [r.name for r in records] == ["s2", "s3", "s4"]
        assert tracer.dropped == 2

    def test_reset_clears_records_and_dropped(self):
        tracer = Tracer(clock=ManualClock(), max_spans=1)
        tracer.end(tracer.begin("a"))
        tracer.end(tracer.begin("b"))
        tracer.reset()
        assert tracer.records() == []
        assert tracer.dropped == 0


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_exact_quantile_edge_cases(self):
        assert math.isnan(exact_quantile([], 99.0))
        # One sample: every percentile is that sample.
        assert exact_quantile([7.0], 0.0) == 7.0
        assert exact_quantile([7.0], 50.0) == 7.0
        assert exact_quantile([7.0], 100.0) == 7.0
        # All-equal samples.
        assert exact_quantile([3.0] * 10, 99.0) == 3.0
        # Nearest rank: p99 of 10 samples is the maximum, not interpolated.
        values = [float(i) for i in range(1, 11)]
        assert exact_quantile(values, 99.0) == 10.0
        assert exact_quantile(values, 50.0) == 5.0
        with pytest.raises(ValueError):
            exact_quantile(values, 101.0)

    def test_histogram_exact_then_bucketed(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0), max_samples=4)
        for v in (0.5, 2.0, 3.0, 50.0):
            h.observe(v)
        assert h.exact
        assert h.quantile(50.0) == 2.0
        assert h.quantile(99.0) == 50.0
        h.observe(60.0)  # past the retention cap
        assert not h.exact
        # Bucketed fallback: upper bound of the rank's bucket, clamped to
        # the observed max.
        assert h.quantile(99.0) == 60.0
        assert h.quantile(50.0) == 10.0
        snap = h.snapshot()
        assert snap["count"] == 5 and snap["exact"] is False

    def test_histogram_rejects_bad_input(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        h = Histogram()
        with pytest.raises(ValueError):
            h.observe(float("nan"))
        assert math.isnan(h.quantile(99.0))  # empty histogram

    def test_registry_labeled_series_and_kind_conflict(self):
        reg = MetricRegistry()
        ok = reg.counter("serve.status", status="ok")
        ok.inc(3)
        # Same labels, different kwarg order -> same series.
        assert reg.counter("serve.status", status="ok") is ok
        degraded = reg.counter("serve.status", status="degraded")
        assert degraded is not ok
        with pytest.raises(ValueError):
            reg.gauge("serve.status", status="ok")
        snap = reg.snapshot()
        assert snap["serve.status{status=ok}"]["value"] == 3

    def test_registry_merge_sums_and_clones(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(5)
        b.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.counter("n").value == 7
        # Missing series are cloned with their custom bounds intact.
        assert a.histogram("lat", bounds=(1.0, 2.0)).count == 1

    def test_counter_rejects_negative(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_gauge_envelope(self):
        reg = MetricRegistry()
        g = reg.gauge("loss")
        for v in (3.0, 1.0, 2.0):
            g.set(v)
        snap = g.snapshot()
        assert snap == {"value": 2.0, "min": 1.0, "max": 3.0, "count": 3}


# --------------------------------------------------------------------- #
# export / JSONL round-trip
# --------------------------------------------------------------------- #
class TestExport:
    def build_capture(self):
        clock = ManualClock()
        tel = Telemetry(clock=clock)
        with tel.span("root", phase="test"):
            clock.advance(1.0)
            with tel.span("child"):
                clock.advance(0.5)
        tel.counter("events", kind="a").inc(4)
        tel.histogram("lat").observe(0.5)
        return tel

    def test_jsonl_round_trip(self, tmp_path):
        tel = self.build_capture()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tel)
        capture = read_jsonl(path)
        assert capture.version == SCHEMA_VERSION
        assert [s.name for s in capture.spans] == ["child", "root"]
        child, root = capture.spans
        assert child.parent_id == root.span_id
        assert root.attrs == {"phase": "test"}
        assert root.duration == 1.5
        (counter, histogram) = capture.metrics
        assert counter["name"] == "events" and counter["value"] == 4
        assert histogram["kind"] == "histogram" and histogram["count"] == 1

    def test_export_is_deterministic_under_fixed_clock(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(p1, self.build_capture())
        write_jsonl(p2, self.build_capture())
        assert p1.read_bytes() == p2.read_bytes()

    def test_validate_accepts_own_export(self):
        assert validate_records(export_records(self.build_capture())) == []

    def test_validate_flags_violations(self):
        records = export_records(self.build_capture())
        assert validate_records(records[1:])  # missing header
        bad_version = [dict(records[0], version=99)] + records[1:]
        assert any("version" in e for e in validate_records(bad_version))
        # A span whose parent is absent (and no drops admitted).
        orphan = [r if r.get("record") != "span" or r["parent_id"] is None
                  else dict(r, parent_id=777) for r in records]
        assert any("parent" in e for e in validate_records(orphan))
        # Header span count mismatch.
        miscount = [dict(records[0], spans=42)] + records[1:]
        assert any("claims" in e for e in validate_records(miscount))

    def test_read_jsonl_raises_dataerror(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(DataError):
            read_jsonl(missing)
        garbage = tmp_path / "bad.jsonl"
        garbage.write_text("{not json\n", encoding="utf-8")
        with pytest.raises(DataError):
            read_jsonl(garbage)

    def test_report_renders_tree_and_hotspots(self, tmp_path):
        tel = self.build_capture()
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, tel)
        text = render_trace_report(read_jsonl(path))
        assert "root" in text and "child" in text
        assert "hotspots" in text.lower()


# --------------------------------------------------------------------- #
# facade, null object, active slot, profiling hooks
# --------------------------------------------------------------------- #
class TestFacade:
    def test_null_telemetry_is_inert(self):
        null = NullTelemetry()
        assert not null.enabled
        span = null.begin("x", a=1)
        assert span.set(b=2) is span
        null.end(span)
        null.counter("c").inc()
        null.gauge("g").set(1.0)
        null.histogram("h").observe(1.0)
        assert null.export_records() == []

    def test_active_slot_default_and_restore(self):
        assert get_active() is NULL
        tel = Telemetry(clock=ManualClock())
        with activated(tel):
            assert get_active() is tel
            inner = Telemetry(clock=ManualClock())
            previous = activate(inner)
            assert previous is tel
            activate(previous)
        assert get_active() is NULL

    def test_timed_decorator_records_span_and_histogram(self):
        clock = ManualClock()
        tel = Telemetry(clock=clock)

        @timed("work/step", stage="test")
        def work():
            clock.advance(0.125)
            return 42

        assert work() == 42  # telemetry off: plain call, nothing recorded
        with activated(tel):
            assert work() == 42
        (record,) = tel.tracer.records()
        assert record.name == "work/step"
        assert record.attrs == {"stage": "test"}
        assert record.duration == 0.125
        assert tel.metrics.histogram("profile.work/step").count == 1

    def test_timed_bare_uses_qualified_name(self):
        calls = []

        @timed
        def helper():
            calls.append(1)

        tel = Telemetry(clock=ManualClock())
        with activated(tel):
            helper()
        (record,) = tel.tracer.records()
        assert record.name.endswith("helper")
        assert calls == [1]

    def test_timed_block(self):
        clock = ManualClock()
        tel = Telemetry(clock=clock)
        with activated(tel):
            with timed_block("phase/io", file="x") as span:
                clock.advance(2.0)
                span.set(rows=10)
        (record,) = tel.tracer.records()
        assert record.duration == 2.0
        assert record.attrs == {"file": "x", "rows": 10}
        assert tel.metrics.histogram("profile.phase/io").count == 1
        # Disabled: yields None and records nothing.
        with timed_block("phase/io") as span:
            assert span is None


# --------------------------------------------------------------------- #
# instrumented call sites: non-interference + coverage
# --------------------------------------------------------------------- #
class TestInstrumentation:
    def test_fit_bitwise_identical_with_telemetry_on_vs_off(self):
        store = small_store()

        def train(telemetry):
            model = TransE(store.num_entities, store.num_relations,
                           dim=4, seed=0)
            history = model.fit(store, epochs=2, batch_size=16, seed=1,
                                telemetry=telemetry)
            return history, model.entity_embeddings().copy()

        hist_off, emb_off = train(None)
        tel = Telemetry(clock=ManualClock())
        hist_on, emb_on = train(tel)
        assert hist_on == hist_off
        np.testing.assert_array_equal(emb_on, emb_off)
        # And the capture actually saw the run, nested correctly.
        names = [r.name for r in tel.tracer.records()]
        assert "fit" in names and "fit/epoch" in names
        assert "kg/corrupt_batch" in names and "optim/step" in names
        by_id = {r.span_id: r for r in tel.tracer.records()}
        batch = next(r for r in tel.tracer.records() if r.name == "fit/batch")
        assert by_id[batch.parent_id].name == "fit/epoch"

    def test_fit_records_nothing_when_disabled(self):
        store = small_store()
        tel = Telemetry(clock=ManualClock())
        model = TransE(store.num_entities, store.num_relations, dim=4, seed=0)
        model.fit(store, epochs=1, batch_size=16, seed=1)  # no telemetry
        assert tel.tracer.records() == []
        assert len(tel.metrics) == 0
        assert get_active() is NULL  # fit restored the slot

    def test_fit_falls_back_to_active_telemetry(self):
        store = small_store()
        tel = Telemetry(clock=ManualClock())
        with activated(tel):
            model = TransE(store.num_entities, store.num_relations,
                           dim=4, seed=0)
            model.fit(store, epochs=1, batch_size=16, seed=1)
        assert any(r.name == "fit" for r in tel.tracer.records())

    def test_sampling_rng_stream_unchanged_by_telemetry(self):
        store = small_store()
        idx = np.arange(store.num_triples)
        plain = corrupt_batch(store, idx, seed=7)
        tel = Telemetry(clock=ManualClock())
        with activated(tel):
            traced = corrupt_batch(store, idx, seed=7)
        for a, b in zip(plain, traced):
            np.testing.assert_array_equal(a, b)
        assert tel.metrics.counter("kg.corrupted_triples").value == idx.size
        (span,) = [r for r in tel.tracer.records()
                   if r.name == "kg/corrupt_batch"]
        assert span.attrs["batch"] == idx.size

    def test_neighbor_cache_sample_traced(self):
        store = small_store()
        kg = KnowledgeGraph(store)
        cache = NeighborCache(kg)
        entities = np.array([0, 1, 2, 3])
        plain = cache.sample(entities, num_samples=3, seed=5)
        tel = Telemetry(clock=ManualClock())
        with activated(tel):
            traced = cache.sample(entities, num_samples=3, seed=5)
        for a, b in zip(plain, traced):
            np.testing.assert_array_equal(a, b)
        assert tel.metrics.counter("kg.neighbor_samples").value == 12


# --------------------------------------------------------------------- #
# ServiceMetrics shim + clock promotion
# --------------------------------------------------------------------- #
class TestServiceMetricsShim:
    def test_legacy_counter_api(self):
        m = ServiceMetrics()
        m.incr("requests")
        m.incr("requests", 2)
        assert m.counters["requests"] == 3
        # Missing keys read as 0 without creating a series (Counter-like).
        assert m.counters["never_written"] == 0
        assert "never_written" not in m.counters
        m.counters["queue_depth"] = 5
        assert m.counters["queue_depth"] == 5

    def test_small_sample_p99_is_observed_value(self):
        m = ServiceMetrics()
        latencies = [0.001 * (i + 1) for i in range(10)]
        for v in latencies:
            m.observe_latency(v)
        # Nearest rank: p99 of 10 observations is the max observation —
        # the old np.percentile path interpolated between the top two.
        assert m.latency_percentile(99.0) == max(latencies)
        assert m.latency_percentile(50.0) in latencies
        snap = m.snapshot()
        assert snap["latency_p99"] == max(latencies)
        assert snap["latency_observations"] == 10

    def test_shares_registry_when_given_one(self):
        reg = MetricRegistry()
        m = ServiceMetrics(registry=reg)
        m.incr("requests")
        assert reg.counter("serve.requests").value == 1

    def test_clock_promotion_compat(self):
        # The serving module keeps re-exporting the promoted core clock.
        from repro.core import clock as core_clock
        from repro.serving import clock as serving_clock

        assert serving_clock.ManualClock is core_clock.ManualClock
        assert serving_clock.system_clock is core_clock.system_clock
        c = serving_clock.ManualClock()
        c.advance(1.5)
        c.sleep(0.5)  # alias preserved
        assert c() == 2.0
        with pytest.raises(ValueError):
            c.advance(-1.0)


# --------------------------------------------------------------------- #
# panel + service integration
# --------------------------------------------------------------------- #
class TestPanelAndServiceIntegration:
    def test_run_panel_joins_failures_to_spans(self):
        from repro.experiments.harness import run_panel
        from repro.models.baselines import MostPopular

        def broken():
            raise RuntimeError("factory exploded")

        dataset = make_movie_dataset(seed=0)
        tel = Telemetry(clock=ManualClock())
        result = run_panel(
            dataset,
            {"Good": MostPopular, "Broken": broken},
            seed=0,
            telemetry=tel,
        )
        assert len(result) == 1 and len(result.failures) == 1
        (failure,) = result.failures
        spans = {r.span_id: r for r in tel.tracer.records()}
        assert failure.span_id in spans
        span = spans[failure.span_id]
        assert span.name == "panel/model"
        assert span.attrs["outcome"] == "failed"
        assert span.attrs["error_type"] == "RuntimeError"
        ok = next(r for r in tel.tracer.records()
                  if r.name == "panel/model" and r.attrs["outcome"] == "ok")
        assert ok.attrs["model"] == "Good"
        assert tel.metrics.counter("panel.models_ok").value == 1
        assert tel.metrics.counter("panel.models_failed").value == 1
        assert get_active() is NULL

    def test_serve_demo_trace_reconciles_and_is_deterministic(self, tmp_path):
        from repro.serving.demo import (
            build_demo_service,
            reconcile_trace_outcomes,
            run_replay,
        )

        def capture(seed):
            service, clock, __ = build_demo_service(seed, 60, trace=True)
            run_replay(service, clock, seed, 60)
            return service

        service = capture(seed=0)
        outcomes = reconcile_trace_outcomes(service)
        assert sum(outcomes.values()) == 60
        # Byte-identical export across two runs of the same seed.
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_jsonl(p1, service.telemetry)
        write_jsonl(p2, capture(seed=0).telemetry)
        assert p1.read_bytes() == p2.read_bytes()
        assert validate_records(export_records(service.telemetry)) == []

    def test_service_without_telemetry_records_nothing(self):
        from repro.serving.demo import build_demo_service, run_replay

        service, clock, __ = build_demo_service(0, 20, trace=False)
        traces = run_replay(service, clock, 0, 20)
        assert len(traces) == 20
        assert service.telemetry is NULL
        assert service.metrics.counters["requests"] == 20
