"""Tests for the persona traffic simulator and load harness (`repro.traffic`).

Covers the determinism contract (same seed -> byte-identical LoadReport
export and identical per-request outcome sequence, clean and faulted),
exact telemetry reconciliation, the legacy-compatible bursty schedule,
the exact-arithmetic admission queue regression, reservoir histograms,
and the persona-driven online stream bridge.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.clock import ManualClock
from repro.core.exceptions import ConfigError, Overloaded
from repro.core.rng import ensure_rng
from repro.serving.admission import AdmissionQueue
from repro.telemetry.metrics import Histogram, MetricRegistry
from repro.traffic import (
    ARCHETYPES,
    SCENARIO_MIXES,
    LoadReport,
    PersonaArchetype,
    PersonaPopulation,
    ScheduleProfile,
    TimedModel,
    TrafficSchedule,
)
from repro.traffic.demo import build_load_world
from repro.traffic.report import check_bench_floor
from repro.traffic.stream import PersonaInteractionStream


# --------------------------------------------------------------------- #
# personas
# --------------------------------------------------------------------- #
class TestPersonaPopulation:
    def test_same_seed_same_members(self):
        a = PersonaPopulation.from_scenario("movie", num_users=100, seed=3)
        b = PersonaPopulation.from_scenario("movie", num_users=100, seed=3)
        assert a.members == b.members

    def test_different_seed_differs(self):
        a = PersonaPopulation.from_scenario("movie", num_users=100, seed=3)
        b = PersonaPopulation.from_scenario("movie", num_users=100, seed=4)
        assert a.members != b.members

    def test_every_mix_persona_represented(self):
        for scenario, mix in SCENARIO_MIXES.items():
            pop = PersonaPopulation.from_scenario(
                scenario, num_users=64, seed=0
            )
            assert set(pop.counts()) == set(mix), scenario
            assert all(v >= 1 for v in pop.counts().values())

    def test_newcomers_take_top_user_ids(self):
        pop = PersonaPopulation.from_scenario("movie", num_users=50, seed=1)
        newcomer_ids = {
            m.user_id for m in pop.members if m.archetype.newcomer
        }
        warm_ids = {
            m.user_id for m in pop.members if not m.archetype.newcomer
        }
        assert newcomer_ids and warm_ids
        assert min(newcomer_ids) >= pop.warm_users
        assert max(warm_ids) < pop.warm_users
        assert max(newcomer_ids) < 50

    def test_warm_users_unique_while_ids_last(self):
        pop = PersonaPopulation.from_scenario("movie", num_users=200, seed=2)
        warm = [m.user_id for m in pop.members if not m.archetype.newcomer]
        assert len(warm) == len(set(warm))

    def test_scaled(self):
        pop = PersonaPopulation.from_scenario("movie", num_users=60, seed=0)
        double = pop.scaled(2.0)
        for before, after in zip(pop.members, double.members):
            assert after.rate == pytest.approx(2.0 * before.rate)
            assert after.user_id == before.user_id

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError):
            PersonaPopulation.from_scenario("no-such", num_users=10)

    def test_archetype_validation(self):
        with pytest.raises(ConfigError):
            PersonaArchetype(name="bad", base_rate=-1.0)
        with pytest.raises(ConfigError):
            PersonaArchetype(name="bad", base_rate=1.0, burst_size=(3, 2))


# --------------------------------------------------------------------- #
# schedule
# --------------------------------------------------------------------- #
class TestTrafficSchedule:
    def _schedule(self, seed=0, horizon=1.0):
        pop = PersonaPopulation.from_scenario("movie", num_users=60, seed=seed)
        profile = ScheduleProfile(horizon=horizon, rate_scale=4.0)
        return TrafficSchedule(pop, profile, seed=seed)

    def test_deterministic(self):
        a = [r.trace() for r in self._schedule(seed=5)]
        b = [r.trace() for r in self._schedule(seed=5)]
        assert a == b

    def test_sorted_within_window(self):
        sched = self._schedule(seed=1)
        times = [r.at for r in sched]
        assert times == sorted(times)
        assert all(0.0 <= t < sched.horizon for t in times)

    def test_continuation_advances_window(self):
        sched = self._schedule(seed=2)
        nxt = sched.continuation()
        assert nxt.epoch == sched.epoch + 1
        assert nxt.start == pytest.approx(sched.horizon)
        assert len(nxt) > 0
        assert all(r.at >= sched.horizon for r in nxt)

    def test_rate_scale_scales_volume(self):
        pop = PersonaPopulation.from_scenario("movie", num_users=60, seed=0)
        lo = TrafficSchedule(pop, ScheduleProfile(horizon=2.0, rate_scale=2.0))
        hi = TrafficSchedule(pop, ScheduleProfile(horizon=2.0, rate_scale=8.0))
        assert len(hi) > 2 * len(lo)

    def test_flash_crowd_densifies(self):
        pop = PersonaPopulation.from_scenario("movie", num_users=60, seed=0)
        flat = TrafficSchedule(
            pop, ScheduleProfile(horizon=2.0, rate_scale=4.0)
        )
        crowd = TrafficSchedule(
            pop,
            ScheduleProfile(
                horizon=2.0, rate_scale=4.0,
                flash_crowds=((1.0, 0.5, 4.0),),
            ),
        )

        def in_window(schedule):
            return sum(1 for r in schedule if 1.0 <= r.at < 1.5)

        assert in_window(crowd) > 1.5 * in_window(flat)

    def test_request_rate(self):
        sched = self._schedule(seed=0, horizon=2.0)
        assert sched.request_rate() == pytest.approx(len(sched) / 2.0)


class TestBurstySchedule:
    """`TrafficSchedule.bursty` must be draw-for-draw the old demo loop."""

    def _legacy(self, num_users, num_requests, seed):
        rng = ensure_rng(seed + 1)
        users, gaps = [], []
        for __ in range(num_requests):
            users.append(int(rng.integers(num_users)))
            gaps.append(0.004 if rng.random() < 0.7 else 0.02)
        return users, gaps

    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_matches_legacy_generator(self, seed):
        users, gaps = self._legacy(40, 120, seed)
        sched = TrafficSchedule.bursty(40, 120, seed)
        assert [r.user_id for r in sched] == users
        assert sched.gaps() == gaps
        assert sched.materialize()[0].at == 0.0

    def test_no_continuation_for_legacy(self):
        sched = TrafficSchedule.bursty(10, 20, 0)
        with pytest.raises(ConfigError):
            sched.continuation()


# --------------------------------------------------------------------- #
# timed model
# --------------------------------------------------------------------- #
class _Scored:
    supports_candidates = False

    def __init__(self):
        self.calls = 0

    def score_all(self, user_id):
        self.calls += 1
        return np.arange(5, dtype=np.float64)

    def extra(self):
        return "delegated"


class TestTimedModel:
    def test_charges_deterministic_time(self):
        clock_a, clock_b = ManualClock(), ManualClock()
        a = TimedModel(_Scored(), clock_a, mean=0.001, seed=9)
        b = TimedModel(_Scored(), clock_b, mean=0.001, seed=9)
        for __ in range(10):
            a.score_all(0)
            b.score_all(0)
        assert clock_a() == clock_b()
        assert clock_a() > 0.0

    def test_median_is_mean(self):
        clock = ManualClock()
        model = TimedModel(_Scored(), clock, mean=0.002, sigma=0.0, seed=0)
        model.score_all(0)
        assert clock() == pytest.approx(0.002)

    def test_delegates(self):
        model = TimedModel(_Scored(), ManualClock(), mean=0.001)
        assert model.extra() == "delegated"
        assert model.supports_candidates is False
        assert model.inner.calls == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TimedModel(_Scored(), ManualClock(), mean=0.0)


# --------------------------------------------------------------------- #
# load harness determinism + reconciliation
# --------------------------------------------------------------------- #
QUICK = ScheduleProfile(
    horizon=0.5, day_period=0.5, flash_crowds=((0.2, 0.1, 3.0),),
    rate_scale=6.0,
)


def _quick_run(seed, fault_rate=0.0):
    harness, service, __ = build_load_world(
        "movie", seed=seed, profile=QUICK, fault_rate=fault_rate,
        num_users=60,
    )
    harness.run()
    return harness, service


class TestLoadHarness:
    @pytest.mark.parametrize("fault_rate", [0.0, 0.08])
    def test_same_seed_byte_identical(self, fault_rate):
        a, __ = _quick_run(11, fault_rate)
        b, __ = _quick_run(11, fault_rate)
        assert a.report.to_json() == b.report.to_json()
        assert a.outcome_trace == b.outcome_trace

    def test_different_seed_differs(self):
        a, __ = _quick_run(0)
        b, __ = _quick_run(1)
        assert a.report.to_json() != b.report.to_json()

    def test_every_request_answered(self):
        harness, __ = _quick_run(3)
        assert len(harness.outcome_trace) == len(harness.schedule)
        assert harness.report.requests == len(harness.schedule)
        assert harness.report.rejected == 0

    def test_reconciles_exactly(self):
        harness, __ = _quick_run(4)
        tally = harness.reconcile()
        assert sum(tally.values()) == harness.report.requests

    def test_reconcile_detects_tampering(self):
        harness, service = _quick_run(5)
        service.metrics.counters["status::ok"] += 1
        with pytest.raises(AssertionError):
            harness.reconcile()

    def test_reconcile_detects_extra_serving(self):
        from repro.serving.service import ServeRequest

        harness, service = _quick_run(6)
        service.serve(ServeRequest(user_id=0))
        with pytest.raises(AssertionError):
            harness.reconcile()

    def test_reconcile_requires_run(self):
        harness, __, ___ = build_load_world(
            "movie", seed=0, profile=QUICK, num_users=60
        )
        with pytest.raises(ConfigError):
            harness.reconcile()

    def test_report_round_trip(self):
        harness, __ = _quick_run(7)
        clone = LoadReport.from_dict(harness.report.to_dict())
        assert clone.to_json() == harness.report.to_json()

    def test_bench_floor(self):
        harness, __ = _quick_run(8)
        check_bench_floor(harness.report, 1.0)
        with pytest.raises(ConfigError):
            check_bench_floor(harness.report, 1e9)


# --------------------------------------------------------------------- #
# admission queue exactness (regression)
# --------------------------------------------------------------------- #
def _try_admit(queue: AdmissionQueue) -> bool:
    try:
        queue.admit()
        return True
    except Overloaded:
        return False


class _ExactReference:
    """Fraction-arithmetic oracle for the fluid admission queue."""

    def __init__(self, capacity, drain_rate, clock):
        self.capacity = capacity
        self.rate = Fraction(float(drain_rate))
        self.clock = clock
        self.backlog = Fraction(0)
        self.last = Fraction(float(clock()))

    def admit(self) -> bool:
        now = Fraction(float(self.clock()))
        if now > self.last:
            drained = (now - self.last) * self.rate
            self.backlog = max(Fraction(0), self.backlog - drained)
            self.last = now
        if self.backlog >= self.capacity:
            return False
        self.backlog += 1
        return True


class TestAdmissionExactness:
    def test_same_timestamp_burst_admits_exact_headroom(self):
        # Partially drain to a fractional backlog, then burst at one
        # timestamp: admits must equal the exact remaining headroom.
        clock = ManualClock()
        queue = AdmissionQueue(capacity=6, drain_rate=3.0, clock=clock)
        for __ in range(6):
            assert _try_admit(queue)
        clock.advance(0.4)
        decisions = [_try_admit(queue) for __ in range(10)]
        backlog = Fraction(6) - Fraction(0.4) * Fraction(3.0)
        expected = 0
        while backlog < 6:
            backlog += 1
            expected += 1
        assert decisions == [True] * expected + [False] * (10 - expected)

    @pytest.mark.parametrize("seed", [17, 33, 0, 5])
    def test_matches_exact_reference_under_subtick_bursts(self, seed):
        # Seeds 17 and 33 made the previous float-accumulator
        # implementation diverge from exact fluid arithmetic (ULP drift
        # across repeated tiny drains caused spurious sheds).
        rng = np.random.default_rng(seed)
        clock_q, clock_r = ManualClock(), ManualClock()
        queue = AdmissionQueue(capacity=4, drain_rate=30.0, clock=clock_q)
        ref = _ExactReference(4, 30.0, clock_r)
        gaps = [1 / 30, 0.01, 0.0333333, 1 / 300, 0.1 / 3]
        for step in range(3000):
            r = rng.random()
            if r < 0.55:
                gap = 0.0  # same-timestamp sub-tick burst
            elif r < 0.9:
                gap = float(rng.choice(gaps))
            else:
                gap = float(rng.exponential(0.02))
            clock_q.advance(gap)
            clock_r.advance(gap)
            assert _try_admit(queue) == ref.admit(), (
                f"seed {seed} diverged at step {step}"
            )

    def test_float_facing_api_unchanged(self):
        clock = ManualClock()
        queue = AdmissionQueue(capacity=4, drain_rate=10.0, clock=clock)
        wait = queue.admit()
        assert isinstance(wait, float) and wait == 0.0
        assert isinstance(queue.depth, float)
        assert isinstance(queue.estimated_wait(), float)
        snap = queue.snapshot()
        assert isinstance(snap["depth"], float)


# --------------------------------------------------------------------- #
# reservoir histograms
# --------------------------------------------------------------------- #
class TestReservoirHistogram:
    def test_default_snapshot_unchanged(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(0.5)
        assert "sampling" not in hist.snapshot()

    def test_reservoir_flag_in_snapshot(self):
        hist = Histogram((1.0, 2.0), reservoir=True)
        hist.observe(0.5)
        assert hist.snapshot()["sampling"] == "reservoir"

    def test_reservoir_caps_samples_and_stays_unbiased(self):
        hist = Histogram((1.0,), max_samples=64, reservoir=True)
        rng = np.random.default_rng(0)
        for value in rng.random(20_000):
            hist.observe(float(value))
        assert hist.count == 20_000
        assert len(hist._samples) == 64
        # Uniform[0, 1): the reservoir median estimates 0.5.
        assert hist.quantile(50.0) == pytest.approx(0.5, abs=0.12)

    def test_reservoir_deterministic(self):
        def fill(seed):
            h = Histogram((1.0,), max_samples=32, reservoir=True,
                          reservoir_seed=seed)
            rng = np.random.default_rng(1)
            for value in rng.random(5000):
                h.observe(float(value))
            return h

        assert fill(7)._samples == fill(7)._samples
        assert fill(7)._samples != fill(8)._samples

    def test_reservoir_beats_bucket_fallback(self):
        # Past max_samples the default mode degrades to coarse bucket
        # estimates (here: one huge bucket); reservoir mode keeps an
        # unbiased sample and stays near the true median.
        plain = Histogram((1e9,), max_samples=100)
        res = Histogram((1e9,), max_samples=100, reservoir=True)
        for value in range(10_000):
            plain.observe(float(value))
            res.observe(float(value))
        assert abs(plain.quantile(50.0) - 4999.5) > 2000
        assert res.quantile(50.0) == pytest.approx(5000, rel=0.35)

    def test_registry_merge_preserves_reservoir(self):
        a, b = MetricRegistry(), MetricRegistry()
        for registry in (a, b):
            hist = registry.histogram(
                "lat", bounds=(1.0,), max_samples=16, reservoir=True
            )
            for value in range(100):
                hist.observe(float(value))
        a.merge(b)
        merged = a.histogram("lat", bounds=(1.0,))
        assert merged.reservoir
        assert merged.count == 200
        assert len(merged._samples) == 16


# --------------------------------------------------------------------- #
# persona-driven online stream bridge
# --------------------------------------------------------------------- #
class TestPersonaStream:
    def _stream(self, seed=0):
        from repro.online.stream import StreamConfig

        config = StreamConfig(
            num_users=40, num_items=60, warm_users=24, warm_items=40
        )
        return PersonaInteractionStream(config, clock=ManualClock(), seed=seed)

    def test_batches_deterministic(self):
        def run(seed):
            stream = self._stream(seed)
            return [
                (batch.trace(), stream.clock())
                for batch in (stream.next_batch() for __ in range(50))
            ]

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_clock_follows_schedule(self):
        stream = self._stream(0)
        before = stream.clock()
        for __ in range(20):
            stream.next_batch()
        assert stream.clock() > before

    def test_newcomers_registered_sequentially(self):
        stream = self._stream(1)
        for __ in range(300):
            stream.next_batch()
        newcomers = [user for __, user in stream.introduced_users]
        assert newcomers == list(
            range(stream.config.warm_users, stream.seen_users)
        )
        assert stream.current_persona in SCENARIO_MIXES["movie"]

    def test_population_must_fit_stream(self):
        from repro.online.stream import StreamConfig

        population = PersonaPopulation.from_scenario(
            "movie", num_users=500, seed=0
        )
        with pytest.raises(ConfigError):
            PersonaInteractionStream(
                StreamConfig(
                    num_users=40, num_items=60, warm_users=24, warm_items=40
                ),
                clock=ManualClock(), seed=0, population=population,
            )
